//! # slb-bench
//!
//! Criterion micro-benchmarks for the numerical kernels, the
//! bench-regression gate, and the companion diagnostic binaries.
//!
//! The figure-regenerating parameter sweeps (Fig. 9, Fig. 10, delay
//! tails, burstiness, logred iterations, Theorem-3 ablation) live as
//! declarative scenario files under `experiments/*.toml`, executed by
//! the `slb-exp` engine via `slb sweep <spec>`. The binaries that remain
//! here are not sweeps:
//!
//! * `validate` — compact pass/fail report of the paper's core claims;
//! * `bench_gate` — CI gate comparing a fresh criterion-shim record
//!   against the committed `BENCH_*.json` trajectory;
//! * `tails`, `stability_frontier`, `relaxation`, `finite_relaxation` —
//!   companion diagnostics.
//!
//! Each binary prints aligned series to stdout; those that write CSVs
//! accept `--out`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Replications the experiment binaries split their `--jobs` budget
/// across when driving the simulator through
/// `SimConfig::run_parallel` — enough to use small-host parallelism
/// without fragmenting the per-replication warm-up.
pub const SIM_REPLICATIONS: usize = 4;

/// Worker-thread count for parallel simulation replications: the
/// machine's available parallelism, capped by the replication count.
pub fn sim_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(SIM_REPLICATIONS)
}

/// Per-replication job count when a `--jobs` budget is split across
/// [`SIM_REPLICATIONS`] replications, floored so degenerate budgets
/// still leave room for a warm-up prefix. The single source of the
/// budget-splitting rule for every experiment binary.
pub fn rep_jobs(total: u64) -> u64 {
    (total / SIM_REPLICATIONS as u64).max(10)
}

/// A simple long-format results table that renders to CSV and to an
/// aligned console listing.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.join(","));
        }
        out
    }

    /// Writes the CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        fs::write(path, self.to_csv())
    }

    /// Renders an aligned console listing.
    pub fn to_aligned(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], width: &[usize], out: &mut String| {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = width[c]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            fmt_row(r, &width, &mut out);
        }
        out
    }
}

/// Minimal `--flag value` CLI parser for the experiment binaries.
///
/// Returns the value following `--name`, if present.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--name value` into a `T`, falling back to `default`; exits with
/// a message on malformed input (appropriate for a CLI tool).
pub fn arg_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match arg_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: could not parse {name} value '{v}'");
            std::process::exit(2);
        }),
    }
}

/// Formats a float with 4 decimal places (shared by all tables).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(["a", "b"]);
        t.push(["1", "2"]);
        t.push(["30", "4"]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n30,4\n");
        // Right-aligned columns: "a" padded to width 2 ("30"), "b" to 1.
        let aligned = t.to_aligned();
        assert!(aligned.starts_with(" a  b\n"), "got {aligned:?}");
        assert!(aligned.contains("30  4"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_enforced() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only one"]);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--rho", "0.75", "--jobs", "1000"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--rho").as_deref(), Some("0.75"));
        assert_eq!(arg_parse(&args, "--jobs", 5u64), 1000);
        assert_eq!(arg_parse(&args, "--missing", 7u64), 7);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(1.23456), "1.2346");
    }
}
