//! The paper's future-work extension, exercised end to end: SQ(d) delay
//! bounds under Markov-modulated (bursty) and Erlang-renewal (smooth)
//! arrivals, against the Poisson baseline and the simulator.
//!
//! For each utilization and each arrival law the table lists the lower
//! and upper mean-delay bounds (slb-mapph product-space QBD), the
//! simulated delay and the tail decay `sp(R)` — burstiness inflates all
//! three, smoothness deflates them, and the Poisson column reproduces
//! Figure 10's values.
//!
//! ```text
//! cargo run -p slb-bench --release --bin burstiness -- \
//!     [--n 3] [--d 2] [--t 3] [--jobs 1000000] [--out burstiness.csv]
//! ```

use slb_bench::{arg_parse, arg_value, f4, rep_jobs, sim_threads, Table, SIM_REPLICATIONS};
use slb_mapph::MapSqd;
use slb_markov::{Map, PhaseType};
use slb_sim::{Policy, SimConfig};

struct ArrivalCase {
    name: &'static str,
    map: Map,
}

fn cases() -> Vec<ArrivalCase> {
    vec![
        ArrivalCase {
            name: "erlang2",
            map: Map::renewal(&PhaseType::erlang(2, 2.0).expect("valid PH")).expect("valid MAP"),
        },
        ArrivalCase {
            name: "poisson",
            map: Map::poisson(1.0).expect("valid MAP"),
        },
        ArrivalCase {
            name: "mmpp-mild",
            map: Map::mmpp2(0.5, 0.5, 0.5, 1.5).expect("valid MAP"),
        },
        ArrivalCase {
            name: "mmpp-bursty",
            map: Map::mmpp2(0.1, 0.1, 0.2, 4.0).expect("valid MAP"),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "--n", 3);
    let d: usize = arg_parse(&args, "--d", 2);
    let t: u32 = arg_parse(&args, "--t", 3);
    let jobs: u64 = arg_parse(&args, "--jobs", 1_000_000);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "burstiness.csv".into());

    println!("SQ({d}) under non-Poisson arrivals: N = {n}, T = {t}\n");
    let mut table = Table::new(["rho", "arrivals", "scv", "lower", "sim", "upper", "sp(R)"]);

    for &rho in &[0.5, 0.7, 0.85] {
        for case in cases() {
            let scv = case.map.interarrival_scv().expect("valid MAP");
            let model = MapSqd::with_utilization(n, d, &case.map, rho).expect("valid parameters");
            let lb = model.lower_bound(t).expect("lower bound");
            let ub = model.upper_bound(t).ok();
            let sim = SimConfig::new(n, rho)
                .expect("validated rho")
                .policy(Policy::SqD { d })
                .arrival_map(case.map.clone())
                .jobs(rep_jobs(jobs))
                .warmup(rep_jobs(jobs) / 10)
                .seed(0xB0B0)
                .run_parallel(SIM_REPLICATIONS, sim_threads())
                .expect("validated config");
            let ub_cell = ub.as_ref().map_or("unstable".to_string(), |u| f4(u.delay));
            println!(
                "rho={rho} {:<12} scv={:.2}: lower={} sim={} upper={} sp(R)={}",
                case.name,
                scv,
                f4(lb.delay),
                f4(sim.mean_delay),
                ub_cell,
                f4(lb.tail_decay),
            );
            table.push([
                f4(rho),
                case.name.to_string(),
                f4(scv),
                f4(lb.delay),
                f4(sim.mean_delay),
                ub_cell,
                f4(lb.tail_decay),
            ]);
        }
        println!();
    }

    table.write_csv(&out).expect("write CSV");
    println!("wrote {out}");
}
