//! Finite-`N` warm-up horizons vs the mean-field transient.
//!
//! For the exact (truncated) SQ(2) chain at N = 3 this reports the time
//! from a cold start until the state law is within TV distance 1e-3 of
//! stationarity, next to the fluid-limit relaxation time of the
//! supermarket ODE at the same load. Both horizons blow up as ρ → 1 —
//! the dynamic counterpart of the paper's warning that high-utilization
//! regimes are where approximations (and short warm-ups) fail.
//!
//! ```text
//! cargo run -p slb-bench --release --bin finite_relaxation -- \
//!     [--n 3] [--d 2] [--cap 16] [--out finite_relaxation.csv]
//! ```

use slb_bench::{arg_parse, arg_value, f4, Table};
use slb_core::meanfield::MeanField;
use slb_core::transient::TransientSqd;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "--n", 3);
    let d: usize = arg_parse(&args, "--d", 2);
    let cap: u32 = arg_parse(&args, "--cap", 16);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "finite_relaxation.csv".into());

    println!(
        "Warm-up horizon (TV < 1e-3 from empty), exact N = {n} chain vs N = ∞ fluid, SQ({d})\n"
    );
    let mut table = Table::new(["rho", "t_relax_finite", "t_relax_fluid", "stationary_delay"]);

    for &rho in &[0.5, 0.7, 0.85, 0.95] {
        let tr = TransientSqd::new(n, d, rho, cap).expect("valid parameters");
        let finite = tr
            .relaxation_time(1e-3, 1_000_000.0)
            .expect("stable chain relaxes");
        let mut mf = MeanField::new(rho, d).expect("valid parameters");
        let fluid = mf
            .run_to_equilibrium(1e-8, 0.05, 1_000_000.0)
            .expect("fluid relaxes");
        println!(
            "rho={rho}: finite(N={n})={:>9}  fluid={:>9}  E[delay]={}",
            f4(finite),
            f4(fluid),
            f4(tr.stationary_mean_delay())
        );
        table.push([
            f4(rho),
            f4(finite),
            f4(fluid),
            f4(tr.stationary_mean_delay()),
        ]);
    }

    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {out}");
}
