//! Figure 9 — relative error (%) of the asymptotic delay formula (Eq. 16)
//! against simulation, as a function of the number of servers `N`, for
//! `d ∈ {2, 5, 10, 25, 50}` at utilization `ρ ∈ {0.75, 0.95}`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p slb-bench --release --bin fig9 -- \
//!     [--rho 0.75] [--jobs 2000000] [--out fig9_rho075.csv] [--quick]
//! ```
//!
//! The paper simulated 10⁸ jobs and discarded the first 10⁷; the default
//! here is 2·10⁶ (adequate for the error's shape); pass `--jobs 100000000`
//! to match the paper exactly. `--quick` shrinks the sweep for smoke
//! tests.

use slb_bench::{arg_parse, arg_value, f4, sim_threads, Table, SIM_REPLICATIONS};
use slb_core::asymptotic;
use slb_sim::{Policy, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rho: f64 = arg_parse(&args, "--rho", 0.75);
    let jobs: u64 = arg_parse(&args, "--jobs", 2_000_000);
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out")
        .unwrap_or(format!("fig9_rho{}.csv", (rho * 100.0).round() as u32));

    let d_values: &[usize] = if quick { &[2, 5] } else { &[2, 5, 10, 25, 50] };
    let n_values: Vec<usize> = if quick {
        vec![10, 50]
    } else {
        vec![5, 10, 15, 25, 50, 75, 100, 150, 200, 250]
    };

    println!("Figure 9 (rho = {rho}): relative error of the asymptotic formula vs simulation");
    println!("jobs per point: {jobs} (warmup: {})\n", jobs / 10);

    let mut table = Table::new([
        "rho",
        "d",
        "N",
        "sim_delay",
        "sim_ci",
        "asymptotic",
        "rel_error_pct",
    ]);
    for &d in d_values {
        let approx = asymptotic::mean_delay(rho, d);
        for &n in &n_values {
            if d > n {
                continue; // cannot poll more servers than exist
            }
            // The --jobs budget is split across parallel replications.
            let rep_jobs = slb_bench::rep_jobs(jobs);
            let sim = SimConfig::new(n, rho)
                .expect("validated rho")
                .policy(Policy::SqD { d })
                .jobs(rep_jobs)
                .warmup(rep_jobs / 10)
                .seed(0xF19 + n as u64 * 1000 + d as u64)
                .run_parallel(SIM_REPLICATIONS, sim_threads())
                .expect("validated config");
            let rel = 100.0 * (sim.mean_delay - approx).abs() / sim.mean_delay;
            table.push([
                f4(rho),
                d.to_string(),
                n.to_string(),
                f4(sim.mean_delay),
                f4(sim.ci_halfwidth),
                f4(approx),
                f4(rel),
            ]);
            println!(
                "d={d:<3} N={n:<4} sim={:<8} asym={:<8} rel_err={:>7}%",
                f4(sim.mean_delay),
                f4(approx),
                f4(rel)
            );
        }
    }

    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {out} ({} rows)", table.len());
    println!(
        "\nExpected shape (paper): error grows as N decreases and rho increases;\n\
         at rho=0.75 the error is not monotone in d; at rho=0.95 errors reach tens of %."
    );
}
