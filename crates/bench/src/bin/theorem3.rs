//! Theorem 3 under the microscope: how exact is the scalar tail
//! `π_{q+1} = ρᴺ·π_q` for the lower-bound model?
//!
//! For a grid of `(N, d, ρ, T)` this harness solves the lower model with
//! the full rate matrix and reports
//!
//! * `sp(R)` versus `ρᴺ` (they agree to machine precision: the level
//!   *mass* decays by exactly `ρᴺ` — a birth–death cut on the total job
//!   count);
//! * the relative *vector* residual `‖π₂ − ρᴺ·π₁‖∞ / ‖π₂‖∞` (zero for
//!   `d = N`, i.e. JSQ, and ≤ ~1e-3 otherwise — see DESIGN.md §4's
//!   reproduction note);
//! * the relative delay difference between the scalar-tail solve and the
//!   full matrix-geometric solve (≤ ~1e-6 everywhere: invisible at any
//!   plotting precision).
//!
//! ```text
//! cargo run -p slb-bench --release --bin theorem3 -- [--out theorem3.csv]
//! ```

use slb_bench::{arg_value, Table};
use slb_core::{BoundKind, BoundModel, Sqd};
use slb_linalg::{power_iteration_sparse, CsrMatrix};
use slb_qbd::{SolveOptions, Tail};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = arg_value(&args, "--out").unwrap_or_else(|| "theorem3.csv".into());

    println!("Theorem 3 diagnostics for the lower-bound model\n");
    let mut table = Table::new([
        "N",
        "d",
        "rho",
        "T",
        "sp(R)",
        "rho^N",
        "vec_residual",
        "delay_rel_diff",
    ]);

    for &(n, d, rho, t) in &[
        (3usize, 2usize, 0.7f64, 2u32),
        (3, 2, 0.7, 3),
        (3, 2, 0.9, 3),
        (3, 3, 0.7, 3), // d = N: JSQ, vector-exact
        (4, 2, 0.8, 2),
        (4, 4, 0.8, 2),
        (6, 2, 0.8, 3),
    ] {
        let sqd = Sqd::new(n, d, rho).expect("valid parameters");
        let model = BoundModel::new(sqd, BoundKind::Lower, t).expect("valid model");
        let blocks = model.qbd_blocks().expect("blocks assemble");
        let sol = blocks.solve(&SolveOptions::default()).expect("stable");

        let rho_n = rho.powi(n as i32);
        let sp_r = match sol.tail() {
            Tail::Matrix(r) => {
                power_iteration_sparse(&CsrMatrix::from_dense(r, 0.0), 1e-13, 100_000)
                    .expect("R is nonnegative")
                    .eigenvalue
            }
            Tail::Scalar(b) => *b,
        };

        let pi1 = sol.level_prob(1);
        let pi2 = sol.level_prob(2);
        let num = pi2
            .iter()
            .zip(&pi1)
            .map(|(a, b)| (a - rho_n * b).abs())
            .fold(0.0_f64, f64::max);
        let den = pi2.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let vec_res = if den > 0.0 { num / den } else { 0.0 };

        let fast = sqd.lower_bound(t).expect("scalar solve").delay;
        let full = sqd.lower_bound_full_r(t).expect("full solve").delay;
        let rel = (fast - full).abs() / full;

        println!(
            "N={n} d={d} rho={rho} T={t}: sp(R)={sp_r:.12} rho^N={rho_n:.12} \
             vec_res={vec_res:.2e} delay_diff={rel:.2e}"
        );
        table.push([
            n.to_string(),
            d.to_string(),
            format!("{rho}"),
            t.to_string(),
            format!("{sp_r:.12}"),
            format!("{rho_n:.12}"),
            format!("{vec_res:.3e}"),
            format!("{rel:.3e}"),
        ]);
    }

    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {out}");
}
