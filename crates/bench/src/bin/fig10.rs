//! Figure 10 — mean delay vs utilization for SQ(2): upper bound,
//! simulation, lower bound, and the asymptotic approximation.
//!
//! Panels: (a) N=3, T=2; (b) N=3, T=3; (c) N=6, T=3; (d) N=12, T=3.
//!
//! Usage:
//!
//! ```text
//! cargo run -p slb-bench --release --bin fig10 -- \
//!     [--panel a|b|c|d|all] [--jobs 2000000] [--out fig10_a.csv] [--quick]
//! ```
//!
//! Where the upper-bound model is unstable (high utilization at small `T`
//! — exactly the blow-up visible in the paper's plots), the UB column
//! reports `inf`.

use slb_bench::{arg_parse, arg_value, f4, rep_jobs, sim_threads, Table, SIM_REPLICATIONS};
use slb_core::{CoreError, Sqd};
use slb_sim::{Policy, SimConfig};

struct Panel {
    name: &'static str,
    n: usize,
    t: u32,
}

const PANELS: &[Panel] = &[
    Panel {
        name: "a",
        n: 3,
        t: 2,
    },
    Panel {
        name: "b",
        n: 3,
        t: 3,
    },
    Panel {
        name: "c",
        n: 6,
        t: 3,
    },
    Panel {
        name: "d",
        n: 12,
        t: 3,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = arg_value(&args, "--panel").unwrap_or_else(|| "all".into());
    let jobs: u64 = arg_parse(&args, "--jobs", 2_000_000);
    let quick = args.iter().any(|a| a == "--quick");

    let utils: Vec<f64> = if quick {
        vec![0.3, 0.6, 0.9]
    } else {
        (1..=19).map(|i| i as f64 * 0.05).collect()
    };

    for panel in PANELS {
        if which != "all" && which != panel.name {
            continue;
        }
        run_panel(panel, &utils, jobs, &args);
    }
}

fn run_panel(panel: &Panel, utils: &[f64], jobs: u64, args: &[String]) {
    let d = 2usize;
    println!(
        "\nFigure 10({}): SQ({d}), N = {}, T = {} — average delay vs utilization",
        panel.name, panel.n, panel.t
    );
    let mut table = Table::new([
        "panel",
        "N",
        "T",
        "rho",
        "lower",
        "sim",
        "sim_ci",
        "upper",
        "asymptotic",
    ]);

    for &rho in utils {
        let sqd = Sqd::new(panel.n, d, rho).expect("valid parameters");
        let lb = sqd.lower_bound(panel.t).expect("lower bound solve").delay;
        let ub = match sqd.upper_bound(panel.t) {
            Ok(r) => f4(r.delay),
            Err(CoreError::UpperBoundUnstable { .. }) => "inf".to_string(),
            Err(e) => panic!("upper bound failed unexpectedly: {e}"),
        };
        let asy = sqd.asymptotic_delay();
        let sim = SimConfig::new(panel.n, rho)
            .expect("validated rho")
            .policy(Policy::SqD { d })
            .jobs(rep_jobs(jobs))
            .warmup(rep_jobs(jobs) / 10)
            .seed(0xF10 + (rho * 1000.0) as u64)
            .run_parallel(SIM_REPLICATIONS, sim_threads())
            .expect("validated config");

        println!(
            "rho={rho:<5.2} lower={:<8} sim={:<8} upper={:<8} asym={:<8}",
            f4(lb),
            f4(sim.mean_delay),
            ub,
            f4(asy)
        );
        table.push([
            panel.name.to_string(),
            panel.n.to_string(),
            panel.t.to_string(),
            f4(rho),
            f4(lb),
            f4(sim.mean_delay),
            f4(sim.ci_halfwidth),
            ub,
            f4(asy),
        ]);
    }

    let out = arg_value(args, "--out").unwrap_or_else(|| format!("fig10_{}.csv", panel.name));
    table.write_csv(&out).expect("write CSV");
    println!(
        "wrote {out}; expected shape: lower <= sim <= upper, lower tight, \
         upper blowing up before rho = 1 (earlier for smaller T), \
         asymptotic below sim with the gap widening as rho -> 1"
    );
}
