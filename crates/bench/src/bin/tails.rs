//! Queue-length tail fractions: finite-`N` (bounds + simulation) vs the
//! mean-field fixed point `s_k = λ^{(dᵏ−1)/(d−1)}`.
//!
//! A Mitzenmacher-style companion to Figure 9: the doubly-exponential
//! asymptotic tails are the headline of the power-of-d literature; this
//! harness shows how heavy the *true* finite-`N` tails are relative to
//! them, and that the bound models bracket the simulated fractions.
//!
//! ```text
//! cargo run -p slb-bench --release --bin tails -- \
//!     [--n 6] [--rho 0.9] [--t 3] [--kmax 6] [--jobs 2000000] [--out tails.csv]
//! ```

use slb_bench::{arg_parse, arg_value, f4, rep_jobs, sim_threads, Table, SIM_REPLICATIONS};
use slb_core::{asymptotic, BoundKind, Sqd};
use slb_sim::{Policy, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "--n", 6);
    let rho: f64 = arg_parse(&args, "--rho", 0.9);
    let t: u32 = arg_parse(&args, "--t", 3);
    let k_max: u32 = arg_parse(&args, "--kmax", 6);
    let jobs: u64 = arg_parse(&args, "--jobs", 2_000_000);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "tails.csv".into());
    let d = 2usize;

    println!("Fraction of servers with >= k jobs: SQ({d}), N = {n}, rho = {rho}, T = {t}\n");

    let sqd = Sqd::new(n, d, rho).expect("valid parameters");
    let lower = sqd
        .queue_tail_fractions(BoundKind::Lower, t, k_max)
        .expect("lower tails");
    let upper = match sqd.queue_tail_fractions(BoundKind::Upper, t, k_max) {
        Ok(v) => v.into_iter().map(f4).collect::<Vec<_>>(),
        Err(_) => vec!["inf".to_string(); k_max as usize + 1],
    };
    let sim = SimConfig::new(n, rho)
        .expect("validated rho")
        .policy(Policy::SqD { d })
        .jobs(rep_jobs(jobs))
        .warmup(rep_jobs(jobs) / 10)
        .seed(0x7A11)
        .run_parallel(SIM_REPLICATIONS, sim_threads())
        .expect("validated config");

    let mut table = Table::new(["k", "lower", "sim", "upper", "asymptotic"]);
    for k in 0..=k_max as usize {
        let sim_k = sim.queue_tail.get(k).copied().unwrap_or(0.0);
        let asym = asymptotic::tail_fraction(rho, d, k as u32);
        println!(
            "k={k}: lower={:<8} sim={:<8} upper={:<8} asym={:<8}",
            f4(lower[k]),
            f4(sim_k),
            upper[k],
            f4(asym)
        );
        table.push([
            k.to_string(),
            f4(lower[k]),
            f4(sim_k),
            upper[k].clone(),
            f4(asym),
        ]);
    }

    table.write_csv(&out).expect("write CSV");
    println!(
        "\nwrote {out}; expected shape: lower <= sim <= upper per k; the \
         asymptotic fractions undershoot the simulated ones increasingly \
         with k at this N."
    );
}
