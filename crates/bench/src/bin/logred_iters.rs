//! The §IV-A in-text claim: "the number of iterations [of the
//! logarithmic-reduction algorithm] is within k = 6" for the paper's
//! configurations — and the contrast with plain functional iteration.
//!
//! Usage:
//!
//! ```text
//! cargo run -p slb-bench --release --bin logred_iters -- [--out logred_iters.csv]
//! ```

use slb_bench::{arg_value, f4, Table};
use slb_core::{BoundKind, BoundModel, Sqd};
use slb_qbd::{functional_iteration, logarithmic_reduction};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = arg_value(&args, "--out").unwrap_or_else(|| "logred_iters.csv".into());

    let mut table = Table::new([
        "N",
        "T",
        "d",
        "rho",
        "kind",
        "logred_iters",
        "logred_residual",
        "functional_iters",
    ]);

    println!("Logarithmic reduction vs functional iteration (G computation)\n");
    let configs = [(3usize, 2u32), (3, 3), (6, 3), (12, 3)];
    for (n, t) in configs {
        for rho in [0.5, 0.75, 0.9, 0.95] {
            for kind in [BoundKind::Lower, BoundKind::Upper] {
                let sqd = Sqd::new(n, 2, rho).expect("valid parameters");
                let model = BoundModel::new(sqd, kind, t).expect("valid model");
                let blocks = model.qbd_blocks().expect("assembly");
                // The G equation has a solution regardless of positive
                // recurrence; report iterations even for unstable UB cases.
                let lr = logarithmic_reduction(&blocks, 1e-13, 64).expect("logred");
                let fi = functional_iteration(&blocks, 1e-12, 2_000_000)
                    .map(|g| g.iterations.to_string())
                    .unwrap_or_else(|_| ">2e6".into());
                println!(
                    "N={n:<3} T={t} rho={rho:<5} {kind:?}: logred k={:<3} (residual {:.1e})  functional k={fi}",
                    lr.iterations, lr.residual
                );
                table.push([
                    n.to_string(),
                    t.to_string(),
                    "2".to_string(),
                    f4(rho),
                    format!("{kind:?}"),
                    lr.iterations.to_string(),
                    format!("{:.3e}", lr.residual),
                    fi,
                ]);
            }
        }
    }

    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {out}");
    println!(
        "Expected: logarithmic reduction within ~6-8 iterations everywhere \
         (quadratic convergence), functional iteration needing orders of \
         magnitude more at high rho."
    );
}
