//! CI bench-regression gate: compares a fresh criterion-shim JSON
//! record (the bench-smoke artifact) against the committed `BENCH_*.json`
//! trajectory and fails on a large slowdown.
//!
//! ```text
//! cargo run -p slb-bench --bin bench_gate -- \
//!     --baseline BENCH_pr5.json --current bench-smoke.json [--threshold 3.0]
//! ```
//!
//! The threshold is deliberately loose (default 3×): the CI record is a
//! single sample on shared runners, so only order-of-magnitude
//! regressions — a kernel accidentally de-optimized, an algorithm
//! swapped for a quadratic one — should trip it, not scheduler noise.
//! Sub-microsecond baselines are pure timer noise at one sample, so the
//! comparison floor (`--floor-ns`, default 1000) clamps the baseline:
//! a 100 ns benchmark only fails once it exceeds `threshold × 1 µs`.
//! For each benchmark the *latest* record per file wins (trajectory
//! files accumulate phases); benchmarks present in only one file are
//! reported but never fail the gate.

use slb_bench::{arg_parse, arg_value, f4, Table};
use slb_exp::Json;

/// `bench name → median_ns of its latest record` from a criterion-shim
/// JSON report.
fn load_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&src).map_err(|e| format!("parsing {path}: {e}"))?;
    let records = doc
        .as_arr()
        .ok_or_else(|| format!("{path}: expected a JSON array of records"))?;
    let mut medians: Vec<(String, f64)> = Vec::new();
    for rec in records {
        let (Some(bench), Some(median)) = (
            rec.get("bench").and_then(Json::as_str),
            rec.get("median_ns").and_then(Json::as_f64),
        ) else {
            return Err(format!("{path}: record missing bench/median_ns: {rec:?}"));
        };
        // Later records override earlier ones: the trajectory's newest
        // phase is the comparison point.
        if let Some(slot) = medians.iter_mut().find(|(b, _)| b == bench) {
            slot.1 = median;
        } else {
            medians.push((bench.to_string(), median));
        }
    }
    if medians.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(medians)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_pr5.json".into());
    let current_path = arg_value(&args, "--current").unwrap_or_else(|| "bench-smoke.json".into());
    let threshold: f64 = arg_parse(&args, "--threshold", 3.0);
    let floor_ns: f64 = arg_parse(&args, "--floor-ns", 1000.0);

    let (baseline, current) = match (load_medians(&baseline_path), load_medians(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {r}");
            }
            std::process::exit(2);
        }
    };

    println!("Bench gate: {current_path} vs {baseline_path} (fail above {threshold}x)\n");
    let mut table = Table::new(["bench", "baseline_ns", "current_ns", "ratio", "verdict"]);
    let mut failures = 0usize;
    for (bench, cur) in &current {
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == bench) else {
            table.push([bench.as_str(), "-", &f4(*cur), "-", "new (no baseline)"]);
            continue;
        };
        let ratio = cur / base;
        let verdict = if *cur > threshold * base.max(floor_ns) {
            failures += 1;
            "REGRESSION"
        } else if ratio > threshold {
            "ok (below floor)"
        } else {
            "ok"
        };
        table.push([
            bench.clone(),
            f4(*base),
            f4(*cur),
            format!("{ratio:.2}x"),
            verdict.to_string(),
        ]);
    }
    for (bench, _) in &baseline {
        if !current.iter().any(|(b, _)| b == bench) {
            table.push([bench.as_str(), "?", "-", "-", "missing from current"]);
        }
    }
    print!("{}", table.to_aligned());

    if failures > 0 {
        eprintln!(
            "\n{failures} benchmark(s) regressed beyond {threshold}x the committed trajectory"
        );
        std::process::exit(1);
    }
    println!("\nall compared benchmarks within {threshold}x of the trajectory");
}
