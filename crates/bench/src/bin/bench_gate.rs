//! CI bench-regression gate: compares a fresh criterion-shim JSON
//! record (the bench-smoke artifact) against the committed `BENCH_*.json`
//! trajectory and fails on a large slowdown.
//!
//! ```text
//! cargo run -p slb-bench --bin bench_gate -- \
//!     --baseline BENCH_pr7.json --current bench-smoke.json \
//!     [--threshold 3.0] [--kernel-threshold 1.3]
//! ```
//!
//! Two threshold classes:
//!
//! * **Kernel benches** (`logred/…`, `cr/…`, `stationary_solve/…`,
//!   `matmul/…`, since PR 7 the serial simulator benches
//!   `sim_serial/…`, `sim_jsq/…`, and since PR 9 the occupancy-lumped
//!   solver benches `lumped_*`) are tight, single-threaded loops whose
//!   medians are reproducible to a few percent, so they get the strict
//!   `--kernel-threshold` (default 1.3×) — the PR 5 → PR 6 trajectory
//!   showed a phantom "regression" on `logred/m64` that was pure
//!   recording-run noise, and a 3× tripwire would never catch the real
//!   thing (an accidentally de-optimized kernel is typically 1.5–3×).
//! * Everything else — multi-threaded simulator and serve benches, which
//!   schedule threads and sockets on shared CI runners — keeps the loose
//!   `--threshold` (default 3×) where only order-of-magnitude breakage
//!   should trip, not scheduler noise.
//!
//! A third, *relative* class gates parallel scaling: every
//! `sim_par_*_t4/…` bench in the current run is compared against its own
//! `…_t1/…` twin **within the same file** — a machine-relative ratio,
//! immune to absolute-speed drift between runners. When the current run
//! was recorded with ≥ 4 CPUs available (the shim stamps `cpus` into
//! every record), 4 worker threads must at least halve the wall time
//! (`--par-ratio`, default 0.5×). On narrower machines real scaling is
//! physically unmeasurable, so the gate falls back to a no-harm bound
//! (`--par-no-harm`, default 1.25×): threads may not make the run
//! slower.
//!
//! Sub-microsecond baselines are pure timer noise at CI sample counts,
//! so the comparison floor (`--floor-ns`, default 1000) clamps the
//! baseline: a 100 ns benchmark only fails once it exceeds
//! `threshold × 1 µs`. For each benchmark the *latest* record per file
//! wins (trajectory files accumulate phases); benchmarks present in
//! only one file are reported but never fail the gate.

use slb_bench::{arg_parse, arg_value, f4, Table};
use slb_exp::Json;

/// Bench-name prefixes of the tight single-threaded loops held to the
/// strict threshold.
const KERNEL_PREFIXES: [&str; 7] = [
    "logred/",
    "cr/",
    "stationary_solve/",
    "matmul/",
    "sim_serial/",
    "sim_jsq/",
    "lumped_",
];

fn is_kernel(bench: &str) -> bool {
    KERNEL_PREFIXES.iter().any(|p| bench.starts_with(p))
}

/// `bench name → median_ns of its latest record` from a criterion-shim
/// JSON report, plus the CPU count the latest records were taken on
/// (1 when the file predates the `cpus` field).
fn load_medians(path: &str) -> Result<(Vec<(String, f64)>, usize), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&src).map_err(|e| format!("parsing {path}: {e}"))?;
    let records = doc
        .as_arr()
        .ok_or_else(|| format!("{path}: expected a JSON array of records"))?;
    let mut medians: Vec<(String, f64)> = Vec::new();
    let mut cpus = 1usize;
    for rec in records {
        let (Some(bench), Some(median)) = (
            rec.get("bench").and_then(Json::as_str),
            rec.get("median_ns").and_then(Json::as_f64),
        ) else {
            return Err(format!("{path}: record missing bench/median_ns: {rec:?}"));
        };
        if let Some(c) = rec.get("cpus").and_then(Json::as_f64) {
            cpus = c as usize;
        }
        // Later records override earlier ones: the trajectory's newest
        // phase is the comparison point.
        if let Some(slot) = medians.iter_mut().find(|(b, _)| b == bench) {
            slot.1 = median;
        } else {
            medians.push((bench.to_string(), median));
        }
    }
    if medians.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok((medians, cpus))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_pr7.json".into());
    let current_path = arg_value(&args, "--current").unwrap_or_else(|| "bench-smoke.json".into());
    let threshold: f64 = arg_parse(&args, "--threshold", 3.0);
    let kernel_threshold: f64 = arg_parse(&args, "--kernel-threshold", 1.3);
    let floor_ns: f64 = arg_parse(&args, "--floor-ns", 1000.0);
    let par_ratio: f64 = arg_parse(&args, "--par-ratio", 0.5);
    let par_no_harm: f64 = arg_parse(&args, "--par-no-harm", 1.25);

    let ((baseline, _), (current, cur_cpus)) =
        match (load_medians(&baseline_path), load_medians(&current_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (b, c) => {
                for r in [b.err(), c.err()].into_iter().flatten() {
                    eprintln!("error: {r}");
                }
                std::process::exit(2);
            }
        };

    println!(
        "Bench gate: {current_path} vs {baseline_path} \
         (fail above {kernel_threshold}x kernels, {threshold}x elsewhere)\n"
    );
    let mut table = Table::new([
        "bench",
        "class",
        "baseline_ns",
        "current_ns",
        "ratio",
        "verdict",
    ]);
    let mut failures = 0usize;
    for (bench, cur) in &current {
        let (class, limit) = if is_kernel(bench) {
            ("kernel", kernel_threshold)
        } else {
            ("other", threshold)
        };
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == bench) else {
            table.push([
                bench.as_str(),
                class,
                "-",
                &f4(*cur),
                "-",
                "new (no baseline)",
            ]);
            continue;
        };
        let ratio = cur / base;
        let verdict = if *cur > limit * base.max(floor_ns) {
            failures += 1;
            "REGRESSION"
        } else if ratio > limit {
            "ok (below floor)"
        } else {
            "ok"
        };
        table.push([
            bench.clone(),
            class.to_string(),
            f4(*base),
            f4(*cur),
            format!("{ratio:.2}x"),
            verdict.to_string(),
        ]);
    }
    for (bench, _) in &baseline {
        if !current.iter().any(|(b, _)| b == bench) {
            table.push([bench.as_str(), "-", "?", "-", "-", "missing from current"]);
        }
    }
    print!("{}", table.to_aligned());

    // Parallel-scaling ratio class: t4 against its own t1 twin within
    // the current file. Machine-relative, so absolute-speed drift
    // between runners cannot trip it — but the bound itself depends on
    // whether the recording machine could physically scale.
    let pairs: Vec<(String, f64, String, f64)> = current
        .iter()
        .filter_map(|(bench, t4)| {
            let twin = bench.replace("_t4/", "_t1/");
            if twin == *bench {
                return None;
            }
            let (_, t1) = current.iter().find(|(b, _)| *b == twin)?;
            Some((bench.clone(), *t4, twin, *t1))
        })
        .collect();
    if !pairs.is_empty() {
        let (limit, bound) = if cur_cpus >= 4 {
            (par_ratio, "scaling")
        } else {
            (par_no_harm, "no-harm")
        };
        println!(
            "\nParallel-scaling gate ({cur_cpus} CPU(s) on the recording machine \
             => {bound} bound: t4 <= {limit}x t1)"
        );
        if cur_cpus < 4 {
            println!(
                "note: fewer than 4 CPUs — multi-core speedup is unmeasurable here, \
                 enforcing only that threads do not hurt"
            );
        }
        let mut ratio_table = Table::new(["pair", "t1_ns", "t4_ns", "t4/t1", "verdict"]);
        for (t4_name, t4, _twin, t1) in &pairs {
            let ratio = t4 / t1;
            let verdict = if ratio <= limit {
                "ok"
            } else {
                failures += 1;
                "SCALING REGRESSION"
            };
            ratio_table.push([
                t4_name.clone(),
                f4(*t1),
                f4(*t4),
                format!("{ratio:.2}x"),
                verdict.to_string(),
            ]);
        }
        print!("{}", ratio_table.to_aligned());
    }

    if failures > 0 {
        eprintln!(
            "\n{failures} benchmark(s) regressed beyond their class threshold \
             ({kernel_threshold}x kernels, {threshold}x elsewhere, \
             parallel-scaling ratio bound)"
        );
        std::process::exit(1);
    }
    println!(
        "\nall compared benchmarks within their class thresholds \
         ({kernel_threshold}x kernels, {threshold}x elsewhere, \
         parallel-scaling ratio bound)"
    );
}
