//! CI bench-regression gate: compares a fresh criterion-shim JSON
//! record (the bench-smoke artifact) against the committed `BENCH_*.json`
//! trajectory and fails on a large slowdown.
//!
//! ```text
//! cargo run -p slb-bench --bin bench_gate -- \
//!     --baseline BENCH_pr6.json --current bench-smoke.json \
//!     [--threshold 3.0] [--kernel-threshold 1.3]
//! ```
//!
//! Two threshold classes:
//!
//! * **Kernel benches** (`logred/…`, `cr/…`, `stationary_solve/…`,
//!   `matmul/…`) are tight, single-threaded dense loops whose medians
//!   are reproducible to a few percent, so they get the strict
//!   `--kernel-threshold` (default 1.3×) — the PR 5 → PR 6 trajectory
//!   showed a phantom "regression" on `logred/m64` that was pure
//!   recording-run noise, and a 3× tripwire would never catch the real
//!   thing (an accidentally de-optimized kernel is typically 1.5–3×).
//! * Everything else — simulator and serve benches, which schedule
//!   threads and sockets on shared CI runners — keeps the loose
//!   `--threshold` (default 3×) where only order-of-magnitude breakage
//!   should trip, not scheduler noise.
//!
//! Sub-microsecond baselines are pure timer noise at CI sample counts,
//! so the comparison floor (`--floor-ns`, default 1000) clamps the
//! baseline: a 100 ns benchmark only fails once it exceeds
//! `threshold × 1 µs`. For each benchmark the *latest* record per file
//! wins (trajectory files accumulate phases); benchmarks present in
//! only one file are reported but never fail the gate.

use slb_bench::{arg_parse, arg_value, f4, Table};
use slb_exp::Json;

/// Bench-name prefixes of the dense numerical kernels held to the
/// strict threshold.
const KERNEL_PREFIXES: [&str; 4] = ["logred/", "cr/", "stationary_solve/", "matmul/"];

fn is_kernel(bench: &str) -> bool {
    KERNEL_PREFIXES.iter().any(|p| bench.starts_with(p))
}

/// `bench name → median_ns of its latest record` from a criterion-shim
/// JSON report.
fn load_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&src).map_err(|e| format!("parsing {path}: {e}"))?;
    let records = doc
        .as_arr()
        .ok_or_else(|| format!("{path}: expected a JSON array of records"))?;
    let mut medians: Vec<(String, f64)> = Vec::new();
    for rec in records {
        let (Some(bench), Some(median)) = (
            rec.get("bench").and_then(Json::as_str),
            rec.get("median_ns").and_then(Json::as_f64),
        ) else {
            return Err(format!("{path}: record missing bench/median_ns: {rec:?}"));
        };
        // Later records override earlier ones: the trajectory's newest
        // phase is the comparison point.
        if let Some(slot) = medians.iter_mut().find(|(b, _)| b == bench) {
            slot.1 = median;
        } else {
            medians.push((bench.to_string(), median));
        }
    }
    if medians.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(medians)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_pr6.json".into());
    let current_path = arg_value(&args, "--current").unwrap_or_else(|| "bench-smoke.json".into());
    let threshold: f64 = arg_parse(&args, "--threshold", 3.0);
    let kernel_threshold: f64 = arg_parse(&args, "--kernel-threshold", 1.3);
    let floor_ns: f64 = arg_parse(&args, "--floor-ns", 1000.0);

    let (baseline, current) = match (load_medians(&baseline_path), load_medians(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {r}");
            }
            std::process::exit(2);
        }
    };

    println!(
        "Bench gate: {current_path} vs {baseline_path} \
         (fail above {kernel_threshold}x kernels, {threshold}x elsewhere)\n"
    );
    let mut table = Table::new([
        "bench",
        "class",
        "baseline_ns",
        "current_ns",
        "ratio",
        "verdict",
    ]);
    let mut failures = 0usize;
    for (bench, cur) in &current {
        let (class, limit) = if is_kernel(bench) {
            ("kernel", kernel_threshold)
        } else {
            ("other", threshold)
        };
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == bench) else {
            table.push([
                bench.as_str(),
                class,
                "-",
                &f4(*cur),
                "-",
                "new (no baseline)",
            ]);
            continue;
        };
        let ratio = cur / base;
        let verdict = if *cur > limit * base.max(floor_ns) {
            failures += 1;
            "REGRESSION"
        } else if ratio > limit {
            "ok (below floor)"
        } else {
            "ok"
        };
        table.push([
            bench.clone(),
            class.to_string(),
            f4(*base),
            f4(*cur),
            format!("{ratio:.2}x"),
            verdict.to_string(),
        ]);
    }
    for (bench, _) in &baseline {
        if !current.iter().any(|(b, _)| b == bench) {
            table.push([bench.as_str(), "-", "?", "-", "-", "missing from current"]);
        }
    }
    print!("{}", table.to_aligned());

    if failures > 0 {
        eprintln!(
            "\n{failures} benchmark(s) regressed beyond their class threshold \
             ({kernel_threshold}x kernels, {threshold}x elsewhere)"
        );
        std::process::exit(1);
    }
    println!(
        "\nall compared benchmarks within their class thresholds \
         ({kernel_threshold}x kernels, {threshold}x elsewhere)"
    );
}
