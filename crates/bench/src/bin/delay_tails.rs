//! Delay *percentiles*, beyond the paper's means: the mixture-of-Erlangs
//! distribution bounds (slb-core `delay_dist`) against simulated
//! percentiles and the exact brute-force law.
//!
//! For each utilization the table lists the median, 90th and 99th
//! percentile of the sojourn time under the lower model, the exact
//! (brute-force) chain, the simulator and the upper model — the
//! distributional extension of Figure 10.
//!
//! ```text
//! cargo run -p slb-bench --release --bin delay_tails -- \
//!     [--n 3] [--d 2] [--t 3] [--jobs 1000000] [--out delay_tails.csv]
//! ```

use slb_bench::{arg_parse, arg_value, f4, rep_jobs, sim_threads, Table, SIM_REPLICATIONS};
use slb_core::brute::BruteForce;
use slb_core::{BoundKind, Sqd};
use slb_sim::{Policy, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "--n", 3);
    let d: usize = arg_parse(&args, "--d", 2);
    let t: u32 = arg_parse(&args, "--t", 3);
    let jobs: u64 = arg_parse(&args, "--jobs", 1_000_000);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "delay_tails.csv".into());
    let percentiles = [0.5, 0.9, 0.99];

    println!("Sojourn-time percentiles: SQ({d}), N = {n}, T = {t}\n");
    let mut table = Table::new(["rho", "p", "lower", "exact", "sim", "upper"]);

    for &rho in &[0.5, 0.7, 0.85, 0.95] {
        let sqd = Sqd::new(n, d, rho).expect("valid parameters");
        let lo = sqd
            .delay_distribution(BoundKind::Lower, t)
            .expect("lower distribution");
        let hi = sqd.delay_distribution(BoundKind::Upper, t).ok();
        let cap = if rho > 0.9 { 60 } else { 35 };
        let exact = BruteForce::solve(n, d, rho, cap)
            .expect("brute force")
            .delay_distribution()
            .expect("exact distribution");
        let sim = SimConfig::new(n, rho)
            .expect("validated rho")
            .policy(Policy::SqD { d })
            .jobs(rep_jobs(jobs))
            .warmup(rep_jobs(jobs) / 10)
            .seed(0xD1A7)
            .run_parallel(SIM_REPLICATIONS, sim_threads())
            .expect("validated config");

        for &p in &percentiles {
            let hi_cell = hi.as_ref().map_or("unstable".to_string(), |h| {
                f4(h.quantile(p).expect("quantile"))
            });
            let row = [
                f4(rho),
                format!("{p}"),
                f4(lo.quantile(p).expect("quantile")),
                f4(exact.quantile(p).expect("quantile")),
                f4(sim.delay_quantile(p).expect("measured jobs exist")),
                hi_cell,
            ];
            println!(
                "rho={} p={}: lower={} exact={} sim={} upper={}",
                row[0], row[1], row[2], row[3], row[4], row[5]
            );
            table.push(row);
        }
    }

    table.write_csv(&out).expect("write CSV");
    println!("\nwrote {out}");
}
