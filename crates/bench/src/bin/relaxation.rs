//! Mean-field transient analysis: how long the `N = ∞` fluid takes to
//! relax to the Eq. 16 fixed point, as a function of utilization and `d`.
//!
//! The asymptotic formula the paper warns about is a *fixed point*; this
//! harness integrates the supermarket ODE from an empty start and reports
//! the relaxation time to a `1e-8` residual — which diverges as `ρ → 1`,
//! a second, dynamic sense in which the asymptotics can mislead at high
//! utilization. The fixed-point delays in the last column reproduce
//! Eq. 16 independently of the closed form.
//!
//! ```text
//! cargo run -p slb-bench --release --bin relaxation -- [--out relaxation.csv]
//! ```

use slb_bench::{arg_value, f4, Table};
use slb_core::asymptotic;
use slb_core::meanfield::MeanField;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = arg_value(&args, "--out").unwrap_or_else(|| "relaxation.csv".into());

    println!("Mean-field relaxation time to residual 1e-8 (empty start)\n");
    let mut table = Table::new(["rho", "d", "t_relax", "delay_ode", "delay_eq16"]);

    for &d in &[1usize, 2, 5] {
        for &rho in &[0.5, 0.7, 0.85, 0.95, 0.99] {
            if d == 1 && rho > 0.9 {
                // The d = 1 fluid has spectral gap (1 − √ρ)² and a
                // geometric (not doubly-exponential) tail: at ρ ≥ 0.95
                // relaxation takes ~10⁵–10⁶ time units over thousands of
                // tail entries. That divergence is the point of the
                // experiment; we report it as such instead of grinding
                // through it.
                println!("d={d} rho={rho}: t_relax=   (diverges)");
                table.push([
                    f4(rho),
                    d.to_string(),
                    "diverges".into(),
                    "".into(),
                    f4(asymptotic::mean_delay(rho, d)),
                ]);
                continue;
            }
            let mut mf = MeanField::new(rho, d).expect("valid parameters");
            let t = mf
                .run_to_equilibrium(1e-8, 0.05, 1_000_000.0)
                .expect("fluid always relaxes below saturation");
            let ode_delay = mf.mean_delay();
            let eq16 = asymptotic::mean_delay(rho, d);
            println!(
                "d={d} rho={rho}: t_relax={:>10} delay(ODE)={} Eq.16={}",
                f4(t),
                f4(ode_delay),
                f4(eq16)
            );
            table.push([f4(rho), d.to_string(), f4(t), f4(ode_delay), f4(eq16)]);
        }
        println!();
    }

    table.write_csv(&out).expect("write CSV");
    println!("wrote {out}");
}
