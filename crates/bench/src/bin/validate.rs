//! End-to-end validation harness: runs the paper's core claims as a
//! compact pass/fail report. Useful as a quick post-install check
//! (`cargo run -p slb-bench --release --bin validate`) — the full
//! evidence lives in the test suite (`cargo test --workspace`).

use slb_core::brute::BruteForce;
use slb_core::Sqd;
use slb_sim::{Policy, SimConfig};

struct Report {
    passed: usize,
    failed: usize,
}

impl Report {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("PASS  {name}: {detail}");
        } else {
            self.failed += 1;
            println!("FAIL  {name}: {detail}");
        }
    }
}

fn main() {
    let mut report = Report {
        passed: 0,
        failed: 0,
    };

    // 1. Sandwich vs brute force.
    for (n, d, lam, t) in [
        (3usize, 2usize, 0.7f64, 3u32),
        (4, 2, 0.6, 2),
        (3, 3, 0.8, 3),
    ] {
        let exact = BruteForce::solve(n, d, lam, 32)
            .expect("brute force")
            .mean_delay();
        let sqd = Sqd::new(n, d, lam).expect("params");
        let lb = sqd.lower_bound(t).expect("lb").delay;
        let ub = sqd.upper_bound(t).expect("ub").delay;
        report.check(
            "sandwich",
            lb <= exact + 1e-6 && exact <= ub + 1e-6,
            format!("N={n} d={d} λ={lam}: {lb:.4} ≤ {exact:.4} ≤ {ub:.4}"),
        );
    }

    // 2. Theorem 3 agreement between solve paths.
    for (n, d, lam, t) in [(3usize, 2usize, 0.8f64, 3u32), (4, 3, 0.7, 2)] {
        let sqd = Sqd::new(n, d, lam).expect("params");
        let fast = sqd.lower_bound(t).expect("scalar").delay;
        let full = sqd.lower_bound_full_r(t).expect("full").delay;
        let rel = ((fast - full) / full).abs();
        report.check(
            "theorem3",
            rel < 1e-6,
            format!("N={n} d={d} λ={lam}: scalar vs full rel. diff {rel:.2e}"),
        );
    }

    // 3. Simulation inside the bounds.
    {
        let (n, d, lam, t) = (6usize, 2usize, 0.8f64, 3u32);
        let sqd = Sqd::new(n, d, lam).expect("params");
        let lb = sqd.lower_bound(t).expect("lb").delay;
        let ub = sqd.upper_bound(t).expect("ub").delay;
        let sim = SimConfig::new(n, lam)
            .expect("cfg")
            .policy(Policy::SqD { d })
            .jobs(slb_bench::rep_jobs(500_000))
            .warmup(slb_bench::rep_jobs(500_000) / 10)
            .seed(1)
            .run_parallel(slb_bench::SIM_REPLICATIONS, slb_bench::sim_threads())
            .expect("sim");
        let slack = 4.0 * sim.ci_halfwidth + 5e-3;
        report.check(
            "simulation",
            lb <= sim.mean_delay + slack && sim.mean_delay <= ub + slack,
            format!(
                "N={n}: {lb:.4} ≤ {:.4}±{:.4} ≤ {ub:.4}",
                sim.mean_delay, sim.ci_halfwidth
            ),
        );
    }

    // 4. Asymptotic formula underestimates at small N / high ρ.
    {
        let sqd = Sqd::new(3, 2, 0.9).expect("params");
        let asym = sqd.asymptotic_delay();
        let lb = sqd.lower_bound(3).expect("lb").delay;
        report.check(
            "asymptotic-gap",
            asym < lb,
            format!("N=3 λ=0.9: asymptotic {asym:.4} < lower bound {lb:.4}"),
        );
    }

    // 5. Upper-bound stability frontier grows with T.
    {
        let sqd = Sqd::new(3, 2, 0.5).expect("params");
        let s2 = sqd.upper_bound_saturation(2, 1e-3).expect("frontier");
        let s4 = sqd.upper_bound_saturation(4, 1e-3).expect("frontier");
        report.check(
            "frontier",
            s2 < s4 && s4 < 1.0,
            format!("saturation: T=2 → {s2:.3}, T=4 → {s4:.3}"),
        );
    }

    // 6. MAP extension: Poisson-as-MAP degenerates to the scalar model,
    // and the modulated sandwich holds against its own brute force.
    {
        let (n, d, lam, t) = (3usize, 2usize, 0.7f64, 3u32);
        let map = slb_markov::Map::poisson(lam * n as f64).expect("map");
        let modulated = slb_mapph::MapSqd::new(n, d, &map)
            .expect("model")
            .lower_bound(t)
            .expect("lb")
            .delay;
        let scalar = Sqd::new(n, d, lam)
            .expect("params")
            .lower_bound(t)
            .expect("lb")
            .delay;
        report.check(
            "map-degeneration",
            (modulated - scalar).abs() < 1e-6,
            format!("Poisson-as-MAP {modulated:.6} vs scalar {scalar:.6}"),
        );

        let mmpp = slb_markov::Map::mmpp2(0.3, 0.3, 0.4, 1.6).expect("map");
        let model = slb_mapph::MapSqd::with_utilization(n, d, &mmpp, lam).expect("model");
        let lb = model.lower_bound(t).expect("lb").delay;
        let ub = model.upper_bound(t).expect("ub").delay;
        let exact =
            slb_mapph::MapBrute::solve(n, d, &mmpp.with_rate(lam * n as f64).expect("scale"), 20)
                .expect("brute")
                .mean_delay();
        report.check(
            "map-sandwich",
            lb <= exact + 1e-3 && exact <= ub + 1e-3,
            format!("MMPP: {lb:.4} ≤ {exact:.4} ≤ {ub:.4}"),
        );
    }

    // 7. Delay percentiles: upper curve dominates the exact survival.
    {
        let (n, d, lam, t) = (3usize, 2usize, 0.7f64, 3u32);
        let sqd = Sqd::new(n, d, lam).expect("params");
        let hi = sqd
            .delay_distribution(slb_core::BoundKind::Upper, t)
            .expect("dist");
        let exact = BruteForce::solve(n, d, lam, 30)
            .expect("brute")
            .delay_distribution()
            .expect("dist");
        let dominated = (1..=60).all(|i| {
            let x = f64::from(i) * 0.25;
            exact.survival(x) <= hi.survival(x) + 1e-9
        });
        report.check(
            "percentiles",
            dominated,
            format!(
                "p99: exact {:.3} ≤ upper {:.3}",
                exact.quantile(0.99).expect("q"),
                hi.quantile(0.99).expect("q")
            ),
        );
    }

    // 8. Mean-field fixed point reproduces Eq. 16.
    {
        let (d, rho) = (2usize, 0.85f64);
        let mut mf = slb_core::meanfield::MeanField::new(rho, d).expect("params");
        mf.run(300.0, 0.02);
        let eq16 = slb_core::asymptotic::mean_delay(rho, d);
        report.check(
            "meanfield",
            (mf.mean_delay() - eq16).abs() < 1e-6,
            format!("ODE {:.6} vs Eq.16 {eq16:.6}", mf.mean_delay()),
        );
    }

    // 9. All four G algorithms agree on a bound-model block set.
    {
        let sqd = Sqd::new(3, 2, 0.85).expect("params");
        let blocks = slb_core::BoundModel::new(sqd, slb_core::BoundKind::Lower, 3)
            .expect("model")
            .qbd_blocks()
            .expect("blocks");
        let lr = slb_qbd::logarithmic_reduction(&blocks, 1e-14, 64).expect("logred");
        let cr = slb_qbd::cyclic_reduction(&blocks, 1e-13, 64).expect("cr");
        let ub = slb_qbd::u_based_iteration(&blocks, 1e-13, 200_000).expect("u-based");
        report.check(
            "g-algorithms",
            lr.g.approx_eq(&cr.g, 1e-8) && lr.g.approx_eq(&ub.g, 1e-7),
            format!(
                "logred {} it / CR {} it / U-based {} it, all agree",
                lr.iterations, cr.iterations, ub.iterations
            ),
        );
    }

    println!("\n{} passed, {} failed", report.passed, report.failed);
    if report.failed > 0 {
        std::process::exit(1);
    }
}
