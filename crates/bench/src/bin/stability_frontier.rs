//! The accuracy/complexity trade-off of the upper bound (paper
//! conclusion): the saturation utilization of the upper-bound model as a
//! function of the threshold `T`, next to the block size `C(N+T−1, T)`
//! that must be paid for it.
//!
//! ```text
//! cargo run -p slb-bench --release --bin stability_frontier -- \
//!     [--n 3] [--d 2] [--tmax 6] [--out frontier.csv]
//! ```

use slb_bench::{arg_parse, arg_value, f4, Table};
use slb_core::combinatorics::binomial;
use slb_core::Sqd;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "--n", 3);
    let d: usize = arg_parse(&args, "--d", 2);
    let t_max: u32 = arg_parse(&args, "--tmax", 6);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "frontier.csv".into());

    println!("Upper-bound saturation utilization vs threshold T (N = {n}, d = {d})\n");
    let sqd = Sqd::new(n, d, 0.5).expect("valid parameters");
    let mut table = Table::new(["N", "d", "T", "block_states", "max_stable_rho"]);
    for t in 1..=t_max {
        let sat = sqd
            .upper_bound_saturation(t, 1e-4)
            .expect("frontier bisection");
        let block = binomial(n - 1 + t as usize, t as usize);
        println!(
            "T={t}: block states = {block:<8} max stable rho = {:.4}",
            sat
        );
        table.push([
            n.to_string(),
            d.to_string(),
            t.to_string(),
            format!("{block:.0}"),
            f4(sat),
        ]);
    }

    table.write_csv(&out).expect("write CSV");
    println!(
        "\nwrote {out}; expected shape: the frontier approaches 1 as T grows, \
         while the per-block state count (and thus the solve cost, cubic in \
         it) grows like T^(N-1) — the exponential price of tight upper \
         bounds observed in the paper."
    );
}
