//! Property-based tests for the dense linear algebra kernel.
//!
//! Strategy: generate random well-conditioned matrices (diagonally dominant
//! with bounded off-diagonals — the same structural class as the QBD blocks
//! this crate exists to solve) and check the defining identities of each
//! operation.

use proptest::prelude::*;
use slb_linalg::{vector, Lu, Matrix};

/// A random diagonally dominant n×n matrix: guaranteed nonsingular, with
/// condition number small enough that 1e-8 tolerances are safe.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals).unwrap();
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            // Diagonal strictly dominates the row.
            m[(i, i)] = off + 1.0 + m[(i, i)].abs();
        }
        m
    })
}

fn any_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_then_multiply_recovers_rhs(
        a in (2usize..8).prop_flat_map(|n| (dominant_matrix(n), any_vec(n)))
    ) {
        let (a, b) = a;
        let x = a.solve_vec(&b).unwrap();
        let r = a.mat_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual too large: {} vs {}", ri, bi);
        }
    }

    #[test]
    fn inverse_is_two_sided(a in (2usize..7).prop_flat_map(dominant_matrix)) {
        let inv = a.inverse().unwrap();
        let n = a.rows();
        let left = inv.mat_mul(&a).unwrap();
        let right = a.mat_mul(&inv).unwrap();
        prop_assert!(left.approx_eq(&Matrix::identity(n), 1e-8));
        prop_assert!(right.approx_eq(&Matrix::identity(n), 1e-8));
    }

    #[test]
    fn det_of_product_is_product_of_dets(
        ab in (2usize..6).prop_flat_map(|n| (dominant_matrix(n), dominant_matrix(n)))
    ) {
        let (a, b) = ab;
        let dab = a.mat_mul(&b).unwrap().det().unwrap();
        let da = a.det().unwrap();
        let db = b.det().unwrap();
        // Relative comparison: determinants of dominant matrices can be large.
        prop_assert!((dab - da * db).abs() <= 1e-8 * da.abs() * db.abs() + 1e-8);
    }

    #[test]
    fn transpose_reverses_products(
        ab in (2usize..6).prop_flat_map(|n| (dominant_matrix(n), dominant_matrix(n)))
    ) {
        let (a, b) = ab;
        let lhs = a.mat_mul(&b).unwrap().transpose();
        let rhs = b.transpose().mat_mul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn transposed_solve_agrees_with_explicit_transpose(
        an in (2usize..7).prop_flat_map(|n| (dominant_matrix(n), any_vec(n)))
    ) {
        let (a, b) = an;
        let lu = Lu::new(&a).unwrap();
        let x1 = lu.solve_transposed_vec(&b).unwrap();
        let x2 = a.transpose().solve_vec(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn mat_vec_matches_mat_mul(
        an in (2usize..7).prop_flat_map(|n| (dominant_matrix(n), any_vec(n)))
    ) {
        let (a, x) = an;
        let as_col = Matrix::from_vec(x.len(), 1, x.clone()).unwrap();
        let via_mul = a.mat_mul(&as_col).unwrap();
        let via_vec = a.mat_vec(&x);
        for i in 0..x.len() {
            prop_assert!((via_mul[(i, 0)] - via_vec[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn vec_mat_is_transpose_mat_vec(
        an in (2usize..7).prop_flat_map(|n| (dominant_matrix(n), any_vec(n)))
    ) {
        let (a, x) = an;
        let lhs = a.vec_mat(&x);
        let rhs = a.transpose().mat_vec(&x);
        for (u, v) in lhs.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn norm_inequalities(a in (2usize..7).prop_flat_map(dominant_matrix)) {
        // Frobenius dominates max-abs; inf/1 norms dominate spectral radius
        // of |A| which dominates nothing we can cheaply compute, so check
        // basic consistency instead.
        prop_assert!(a.norm_frobenius() >= a.max_abs() - 1e-12);
        prop_assert!(a.norm_inf() >= a.max_abs() - 1e-12);
        prop_assert!(a.norm_one() >= a.max_abs() - 1e-12);
    }

    #[test]
    fn normalize_sum_makes_distribution(mut x in prop::collection::vec(0.01f64..5.0, 1..20)) {
        vector::normalize_sum(&mut x);
        prop_assert!((vector::sum(&x) - 1.0).abs() < 1e-12);
        prop_assert!(vector::is_nonnegative(&x, 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kron_norm_is_multiplicative_for_nonnegative(
        ab in (1usize..5, 1usize..5).prop_flat_map(|(n, m)| {
            (
                prop::collection::vec(0.0f64..3.0, n * n),
                prop::collection::vec(0.0f64..3.0, m * m),
                Just(n),
                Just(m),
            )
        }),
    ) {
        let (av, bv, n, m) = ab;
        let a = Matrix::from_vec(n, n, av).unwrap();
        let b = Matrix::from_vec(m, m, bv).unwrap();
        let k = a.kron(&b);
        prop_assert_eq!(k.shape(), (n * m, n * m));
        // Row sums multiply: (A ⊗ B)·e = (A·e) ⊗ (B·e).
        prop_assert!((k.norm_inf() - a.norm_inf() * b.norm_inf()).abs() < 1e-9);
    }

    #[test]
    fn kron_respects_matvec(
        abx in (1usize..4, 1usize..4).prop_flat_map(|(n, m)| {
            (
                prop::collection::vec(-2.0f64..2.0, n * n),
                prop::collection::vec(-2.0f64..2.0, m * m),
                prop::collection::vec(-1.0f64..1.0, n * m),
                Just(n),
                Just(m),
            )
        }),
    ) {
        // (A ⊗ B)(x ⊗ y) structure: check against explicit blocked
        // evaluation of (A ⊗ B)·v for a general v.
        let (av, bv, v, n, m) = abx;
        let a = Matrix::from_vec(n, n, av).unwrap();
        let b = Matrix::from_vec(m, m, bv).unwrap();
        let k = a.kron(&b);
        let got = k.mat_vec(&v);
        // Blocked reference: out[i*m + p] = Σ_j Σ_q A[i,j] B[p,q] v[j*m+q].
        for i in 0..n {
            for p in 0..m {
                let mut want = 0.0;
                for j in 0..n {
                    for q in 0..m {
                        want += a[(i, j)] * b[(p, q)] * v[j * m + q];
                    }
                }
                prop_assert!((got[i * m + p] - want).abs() < 1e-9);
            }
        }
    }
}
