//! Equivalence suite: the in-place kernel must produce **bit-identical**
//! results to the allocating operator-overload paths.
//!
//! The in-place kernels evaluate the same floating-point operations in
//! the same order as the overloads, so equality here is exact (`==`), not
//! approximate — any reordering of accumulation would trip these tests.

use slb_linalg::{Lu, Matrix, Workspace};

/// Deterministic dense test matrix with no special structure.
fn dense(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        let x = (r as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add((c as u64).wrapping_mul(1_442_695_040_888_963_407))
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Map to (-1, 1) with a few exact zeros sprinkled in.
        if x % 11 == 0 {
            0.0
        } else {
            (x % 10_000) as f64 / 5_000.0 - 1.0
        }
    })
}

/// Diagonally dominant, hence safely factorizable.
fn dominant(n: usize, salt: u64) -> Matrix {
    let mut a = dense(n, salt);
    for i in 0..n {
        a[(i, i)] += n as f64 + 1.0;
    }
    a
}

#[test]
fn mul_into_matches_operator_product() {
    for &n in &[1usize, 2, 3, 5, 8, 16, 33] {
        let a = dense(n, 1);
        let b = dense(n, 2);
        let by_operator = &a * &b;
        let mut ws = Workspace::square(n);
        let mut out = ws.take();
        a.mul_into(&b, &mut out).unwrap();
        assert_eq!(out, by_operator, "mul_into diverged at n = {n}");
        // The accumulating form seeded with zeros IS the product, bit for
        // bit; seeded with data it matches product-then-add to round-off
        // (the accumulation folds products into the seed term by term).
        let mut acc = ws.take();
        acc.fill(0.0);
        a.mul_acc_into(&b, &mut acc).unwrap();
        assert_eq!(acc, by_operator, "zero-seeded mul_acc_into at n = {n}");
        let seed = dense(n, 3);
        acc.copy_from(&seed);
        a.mul_acc_into(&b, &mut acc).unwrap();
        let acc_ref = &seed + &by_operator;
        assert!(
            acc.approx_eq(&acc_ref, 1e-12 * n as f64),
            "seeded mul_acc_into diverged at n = {n}"
        );
    }
}

#[test]
fn elementwise_assign_ops_match_operators() {
    let n = 13;
    let a = dense(n, 4);
    let b = dense(n, 5);

    let mut sum = a.clone();
    sum += &b;
    assert_eq!(sum, &a + &b);

    let mut diff = a.clone();
    diff -= &b;
    assert_eq!(diff, &a - &b);

    let mut scaled = a.clone();
    scaled.scale_in_place(-2.5);
    assert_eq!(scaled, &a * -2.5);

    let mut axpyed = a.clone();
    axpyed.axpy(1.0, &b).unwrap();
    assert_eq!(axpyed, &a + &b);

    let mut shifted = a.clone();
    shifted.add_assign_scaled_identity(0.75).unwrap();
    assert_eq!(shifted, a.add_scaled_identity(0.75).unwrap());
}

#[test]
fn diff_norms_match_materialized_difference() {
    let a = dense(9, 6);
    let b = dense(9, 7);
    let d = &a - &b;
    assert_eq!(a.norm_inf_diff(&b), d.norm_inf());
    assert_eq!(a.max_abs_diff(&b), d.max_abs());
}

#[test]
fn transpose_into_matches_transpose() {
    let a = Matrix::from_fn(4, 7, |r, c| (r * 7 + c) as f64 * 0.311 - 1.0);
    let mut out = Matrix::zeros(7, 4);
    a.transpose_into(&mut out);
    assert_eq!(out, a.transpose());
}

#[test]
fn lu_solves_match_per_column_path() {
    for &n in &[1usize, 2, 4, 9, 17, 32] {
        let a = dominant(n, 8);
        let b = dense(n, 9);
        let lu = Lu::new(&a).unwrap();
        // solve_mat (and solve_mat_into beneath it) against the
        // column-by-column vector solver.
        let x = lu.solve_mat(&b).unwrap();
        for c in 0..n {
            let xc = lu.solve_vec(&b.col(c)).unwrap();
            for r in 0..n {
                assert_eq!(x[(r, c)], xc[r], "n = {n}, entry ({r}, {c})");
            }
        }
        // In-place form into recycled scratch (unspecified contents).
        let mut ws = Workspace::square(n);
        let mut scratch = ws.take();
        scratch.fill(f64::NAN); // prove every entry is overwritten
        lu.solve_mat_into(&b, &mut scratch).unwrap();
        assert_eq!(scratch, x);
    }
}

#[test]
fn lu_refactor_is_bit_identical_to_fresh_factorization() {
    let n = 12;
    let first = dominant(n, 10);
    let second = dominant(n, 11);
    let mut reused = Lu::new(&first).unwrap();
    reused.refactor(&second).unwrap();
    let fresh = Lu::new(&second).unwrap();
    assert_eq!(reused.det(), fresh.det());
    let b = dense(n, 12);
    assert_eq!(reused.solve_mat(&b).unwrap(), fresh.solve_mat(&b).unwrap());
}

#[test]
fn matvec_into_matches_allocating_forms() {
    let a = dense(11, 13);
    let x: Vec<f64> = (0..11).map(|i| (i as f64) * 0.17 - 0.9).collect();
    let mut y = vec![f64::NAN; 11];
    a.mat_vec_into(&x, &mut y);
    assert_eq!(y, a.mat_vec(&x));
    a.vec_mat_into(&x, &mut y);
    assert_eq!(y, a.vec_mat(&x));
}
