use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Error type for all fallible operations in this crate.
///
/// The variants describe the precondition that failed; they carry enough
/// context (dimensions, pivot magnitude) to diagnose a failing solve in the
/// QBD pipeline without a debugger.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation, e.g. `"mat_mul"`.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix is singular to working precision: elimination produced a
    /// pivot whose magnitude is below the tolerance.
    Singular {
        /// Column at which elimination broke down.
        column: usize,
        /// Magnitude of the offending pivot.
        pivot: f64,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the iterative method.
        method: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual (method-specific) at the last iteration.
        residual: f64,
    },
    /// Construction input was malformed (e.g. ragged rows, empty matrix).
    InvalidInput {
        /// Description of the violated precondition.
        reason: String,
    },
    /// An iterative method was interrupted cooperatively — its
    /// [`Budget`](crate::Budget) expired, its
    /// [`CancelToken`](crate::CancelToken) was cancelled, or the
    /// `solver.cancel` fail point fired — before convergence.
    Interrupted {
        /// Name of the interrupted method.
        method: &'static str,
        /// Iterations completed before the interruption.
        iterations: usize,
        /// Residual (method-specific) at the point of interruption;
        /// `NaN` when the method had not yet measured one.
        residual: f64,
        /// Wall-clock time the solve ran before being interrupted.
        elapsed: Duration,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { column, pivot } => write!(
                f,
                "matrix is singular to working precision (pivot {pivot:.3e} at column {column})"
            ),
            LinalgError::NoConvergence {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            LinalgError::Interrupted {
                method,
                iterations,
                residual,
                elapsed,
            } => write!(
                f,
                "{method} interrupted after {iterations} iterations \
                 ({:.3}s elapsed, residual {residual:.3e})",
                elapsed.as_secs_f64()
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::Singular {
            column: 3,
            pivot: 1e-17,
        };
        let s = e.to_string();
        assert!(s.contains("singular"));
        assert!(s.contains("column 3"));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<LinalgError>();
    }

    #[test]
    fn interrupted_display_reports_progress() {
        let e = LinalgError::Interrupted {
            method: "null_vector_gs",
            iterations: 120,
            residual: 3.5e-7,
            elapsed: Duration::from_millis(1500),
        };
        let s = e.to_string();
        assert!(s.contains("null_vector_gs interrupted after 120 iterations"));
        assert!(s.contains("1.500s"));
        assert!(s.contains("3.500e-7"));
    }

    #[test]
    fn dimension_mismatch_display() {
        let e = LinalgError::DimensionMismatch {
            op: "mat_mul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in mat_mul: lhs is 2x3, rhs is 4x5"
        );
    }
}
