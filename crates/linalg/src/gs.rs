//! Sparse Gauss–Seidel solver for stationary (left null) vectors.
//!
//! The lumped QBD path assembles finite balance systems `π M = 0`,
//! `π · w = 1` whose dimension reaches the hundreds of thousands; a dense
//! LU factorization is out of the question there. The rows of `M` are
//! CTMC-like (nonnegative off-diagonal rates, strictly negative diagonal)
//! which makes the classical Gauss–Seidel splitting semiconvergent, and a
//! forward sweep in the assembly order — states sorted by total job count
//! — follows the downward drift of a stable queueing system, so the
//! iteration contracts at roughly the utilization per sweep.
//!
//! The solver consumes `Mᵀ` rather than `M`: row `i` of `Mᵀ` lists exactly
//! the balance equation of state `i` (all inflow terms of `π M = 0`),
//! which is what one sweep update needs contiguously.

use crate::budget::Budget;
use crate::sparse::CsrMatrix;
use crate::{LinalgError, Result};

/// A converged left null vector of a balance system; see
/// [`null_vector_gs`].
#[derive(Debug, Clone, PartialEq)]
pub struct NullVector {
    /// The normalized solution `π ≥ 0` with `π · w = 1`.
    pub x: Vec<f64>,
    /// Final true residual `‖π M‖∞`.
    pub residual: f64,
    /// Gauss–Seidel sweeps performed.
    pub sweeps: usize,
}

/// Solves `π M = 0`, `π · weights = 1`, `π ≥ 0` by Gauss–Seidel sweeps,
/// given the **transpose** `Mᵀ` of the balance matrix.
///
/// `M` must have CTMC balance structure: strictly negative diagonal and
/// nonnegative off-diagonal entries (so the sweep preserves nonnegativity
/// and the splitting is semiconvergent). Convergence is declared when the
/// scaled residual `‖π M‖∞ / (‖M‖₁ · ‖π‖∞)` drops below `tol`; the raw
/// residual is reported in [`NullVector::residual`]. `weights` must be
/// strictly positive.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `mt` is not square.
/// * [`LinalgError::InvalidInput`] for a missing/nonnegative diagonal,
///   non-positive weights, or a length mismatch.
/// * [`LinalgError::NoConvergence`] if the scaled residual is still above
///   `tol` after `max_sweeps` sweeps.
///
/// # Examples
///
/// An M/M/1 queue truncated at 3 states (λ = 1, µ = 2): the stationary
/// vector is geometric with ratio ρ = 1/2.
///
/// ```
/// use slb_linalg::{null_vector_gs, CooBuilder};
///
/// // Generator M (rows sum to 0), assembled transposed: add(col, row, v).
/// let mut mt = CooBuilder::new(3, 3);
/// for (r, c, v) in [
///     (0, 0, -1.0), (0, 1, 1.0),
///     (1, 0, 2.0), (1, 1, -3.0), (1, 2, 1.0),
///     (2, 1, 2.0), (2, 2, -2.0),
/// ] {
///     mt.add(c, r, v).unwrap();
/// }
/// let sol = null_vector_gs(&mt.build(), &[1.0; 3], 1e-14, 1000).unwrap();
/// let expect = [4.0 / 7.0, 2.0 / 7.0, 1.0 / 7.0];
/// for (got, want) in sol.x.iter().zip(expect) {
///     assert!((got - want).abs() < 1e-12);
/// }
/// assert!(sol.residual < 1e-12);
/// ```
pub fn null_vector_gs(
    mt: &CsrMatrix,
    weights: &[f64],
    tol: f64,
    max_sweeps: usize,
) -> Result<NullVector> {
    null_vector_gs_budgeted(mt, weights, tol, max_sweeps, &Budget::unlimited())
}

/// [`null_vector_gs`] under a cooperative [`Budget`], polled once per
/// sweep.
///
/// Production-size lumped systems take minutes of sweeps, so this is
/// the variant the serving stack calls: an expired deadline or a
/// cancelled token aborts after the current sweep. A sweep that has
/// already converged returns `Ok` even if the budget expired during it
/// — finished work is never discarded.
///
/// # Errors
///
/// Everything [`null_vector_gs`] returns, plus
/// [`LinalgError::Interrupted`] (carrying sweeps done, the latest sweep
/// residual and elapsed time) when the budget trips first.
pub fn null_vector_gs_budgeted(
    mt: &CsrMatrix,
    weights: &[f64],
    tol: f64,
    max_sweeps: usize,
    budget: &Budget,
) -> Result<NullVector> {
    if !mt.is_square() {
        return Err(LinalgError::NotSquare { shape: mt.shape() });
    }
    let n = mt.rows();
    if weights.len() != n {
        return Err(LinalgError::InvalidInput {
            reason: format!("{} weights for a {n}-state system", weights.len()),
        });
    }
    if weights.iter().any(|&w| !w.is_finite() || w <= 0.0) {
        return Err(LinalgError::InvalidInput {
            reason: "normalization weights must be strictly positive and finite".to_string(),
        });
    }
    // Diagonal pivots of M (== diagonal of Mᵀ).
    let mut diag = vec![0.0; n];
    for (i, d) in diag.iter_mut().enumerate() {
        *d = mt.get(i, i);
        // NaN must fail too, so test for "not strictly negative".
        if d.is_nan() || *d >= 0.0 {
            return Err(LinalgError::InvalidInput {
                reason: format!("balance matrix needs a negative diagonal; row {i} has {d}"),
            });
        }
    }
    // ‖M‖∞ over rows of M = maximum absolute column sum of Mᵀ.
    let scale_m = mt.norm_one().max(f64::MIN_POSITIVE);

    let mut x = vec![1.0 / n as f64; n];
    normalize(&mut x, weights);
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        sweeps += 1;
        // One forward sweep. The pre-update row sum is the balance residual
        // of equation i under the current (mixed old/new) iterate; its max
        // converges to the true residual as the updates die out, giving a
        // free convergence signal without a second pass over the matrix.
        let mut sweep_res = 0.0_f64;
        for i in 0..n {
            let mut off = 0.0;
            let mut res_i = 0.0;
            for (j, v) in mt.row(i) {
                res_i += v * x[j];
                if j != i {
                    off += v * x[j];
                }
            }
            sweep_res = sweep_res.max(res_i.abs());
            // off ≥ 0 and diag < 0 keep the iterate nonnegative.
            x[i] = -off / diag[i];
        }
        normalize(&mut x, weights);
        let x_inf = x.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
        if sweep_res <= tol * scale_m * x_inf.max(f64::MIN_POSITIVE) {
            let residual = true_residual(mt, &x);
            if residual <= tol * scale_m * x_inf.max(f64::MIN_POSITIVE) {
                return Ok(NullVector {
                    x,
                    residual,
                    sweeps,
                });
            }
        }
        // Poll after the convergence test so a sweep that just
        // converged is returned rather than interrupted.
        budget.check("null_vector_gs", sweeps, sweep_res)?;
    }
    Err(LinalgError::NoConvergence {
        method: "null_vector_gs",
        iterations: max_sweeps,
        residual: true_residual(mt, &x),
    })
}

/// `‖π M‖∞ = ‖Mᵀ πᵀ‖∞`.
fn true_residual(mt: &CsrMatrix, x: &[f64]) -> f64 {
    let mut r = vec![0.0; x.len()];
    mt.mat_vec_into(x, &mut r);
    r.iter().fold(0.0_f64, |a, &b| a.max(b.abs()))
}

fn normalize(x: &mut [f64], weights: &[f64]) {
    let s: f64 = x.iter().zip(weights).map(|(a, w)| a * w).sum();
    if s > 0.0 {
        for v in x.iter_mut() {
            *v /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    /// Birth–death generator transposed, with uniform weights.
    fn bd_mt(rates: &[(f64, f64)]) -> CsrMatrix {
        // rates[i] = (up_i, down_i) for states 0..n; boundary rates 0.
        let n = rates.len();
        let mut mt = CooBuilder::new(n, n);
        for (i, &(up, down)) in rates.iter().enumerate() {
            let mut out = 0.0;
            if i + 1 < n {
                mt.add(i + 1, i, up).unwrap();
                out += up;
            }
            if i > 0 {
                mt.add(i - 1, i, down).unwrap();
                out += down;
            }
            mt.add(i, i, -out).unwrap();
        }
        mt.build()
    }

    #[test]
    fn truncated_mm1_geometric() {
        let rho = 0.8;
        let n = 40;
        let rates: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    if i + 1 < n { rho } else { 0.0 },
                    if i > 0 { 1.0 } else { 0.0 },
                )
            })
            .collect();
        let mt = bd_mt(&rates);
        let sol = null_vector_gs(&mt, &vec![1.0; n], 1e-13, 10_000).unwrap();
        for i in 1..n {
            let ratio = sol.x[i] / sol.x[i - 1];
            assert!((ratio - rho).abs() < 1e-9, "state {i}: ratio {ratio}");
        }
        let mass: f64 = sol.x.iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_normalization_respected() {
        let rates = vec![(1.0, 0.0), (0.0, 2.0)];
        let mt = bd_mt(&rates);
        let w = vec![2.0, 4.0];
        let sol = null_vector_gs(&mt, &w, 1e-13, 1000).unwrap();
        let dot: f64 = sol.x.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert!((dot - 1.0).abs() < 1e-12);
        // Balance: x0 * 1 = x1 * 2.
        assert!((sol.x[0] - 2.0 * sol.x[1]).abs() < 1e-12);
    }

    #[test]
    fn rejects_nonnegative_diagonal() {
        let mut mt = CooBuilder::new(2, 2);
        mt.add(0, 0, 1.0).unwrap();
        mt.add(1, 1, -1.0).unwrap();
        let e = null_vector_gs(&mt.build(), &[1.0, 1.0], 1e-10, 10);
        assert!(matches!(e, Err(LinalgError::InvalidInput { .. })));
    }

    #[test]
    fn cancelled_budget_interrupts_mid_solve() {
        use crate::{Budget, CancelToken};
        let rho = 0.999; // slow contraction: needs many sweeps
        let n = 200;
        let rates: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    if i + 1 < n { rho } else { 0.0 },
                    if i > 0 { 1.0 } else { 0.0 },
                )
            })
            .collect();
        let mt = bd_mt(&rates);
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().cancel_token(token);
        match null_vector_gs_budgeted(&mt, &vec![1.0; n], 1e-13, 100_000, &budget) {
            Err(LinalgError::Interrupted {
                method, iterations, ..
            }) => {
                assert_eq!(method, "null_vector_gs");
                assert_eq!(iterations, 1, "aborts after the first sweep");
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // The unbudgeted entry point still converges on the same system.
        assert!(null_vector_gs(&mt, &vec![1.0; n], 1e-10, 1_000_000).is_ok());
    }

    #[test]
    fn rejects_bad_weights() {
        let rates = vec![(1.0, 0.0), (0.0, 2.0)];
        let mt = bd_mt(&rates);
        assert!(null_vector_gs(&mt, &[1.0, 0.0], 1e-10, 10).is_err());
        assert!(null_vector_gs(&mt, &[1.0], 1e-10, 10).is_err());
    }
}
