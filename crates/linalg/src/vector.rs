//! Free functions on `&[f64]` vectors.
//!
//! Stationary distributions in the QBD pipeline are plain `Vec<f64>` row
//! vectors; these helpers cover the handful of operations performed on
//! them (dot products, norms, normalization, elementwise combination).

/// Dot product `x · y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Sum of all entries (`x · e`).
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// `x + y` elementwise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// `x − y` elementwise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// `s · x`.
pub fn scale(x: &[f64], s: f64) -> Vec<f64> {
    x.iter().map(|a| a * s).collect()
}

/// `x ← s · x`, in place (the allocation-free sibling of [`scale`]).
pub fn scale_in_place(x: &mut [f64], s: f64) {
    for v in x {
        *v *= s;
    }
}

/// Maximum absolute entry.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Sum of absolute entries.
pub fn norm_one(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Euclidean norm.
pub fn norm_two(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Rescales `x` so its entries sum to one, returning the original sum.
///
/// Used to normalize stationary distributions after a homogeneous solve.
///
/// # Panics
///
/// Panics if the entries sum to (numerically) zero, since the result would
/// not be a distribution.
pub fn normalize_sum(x: &mut [f64]) -> f64 {
    let s = sum(x);
    assert!(
        s.abs() > f64::MIN_POSITIVE,
        "normalize_sum: vector sums to zero"
    );
    for v in x.iter_mut() {
        *v /= s;
    }
    s
}

/// `true` when all entries of a probability vector are nonnegative within
/// tolerance `tol` (tiny negative round-off is clamped by callers).
pub fn is_nonnegative(x: &[f64], tol: f64) -> bool {
    x.iter().all(|&v| v >= -tol)
}

/// Clamps tiny negative round-off in a probability vector to zero.
///
/// # Panics
///
/// Panics if an entry is more negative than `-tol`, which signals a real
/// numerical failure rather than round-off.
pub fn clamp_nonnegative(x: &mut [f64], tol: f64) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            assert!(
                *v >= -tol,
                "clamp_nonnegative: entry {v} below tolerance -{tol}"
            );
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_sums() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn elementwise() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(scale(&[1.0, -2.0], 2.0), vec![2.0, -4.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(norm_one(&[1.0, -3.0, 2.0]), 6.0);
        assert!((norm_two(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn normalize() {
        let mut x = vec![1.0, 3.0];
        let s = normalize_sum(&mut x);
        assert_eq!(s, 4.0);
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "sums to zero")]
    fn normalize_zero_panics() {
        let mut x = vec![0.0, 0.0];
        normalize_sum(&mut x);
    }

    #[test]
    fn clamp() {
        let mut x = vec![0.5, -1e-15, 0.5];
        clamp_nonnegative(&mut x, 1e-12);
        assert_eq!(x[1], 0.0);
        assert!(is_nonnegative(&x, 0.0));
    }

    #[test]
    #[should_panic(expected = "below tolerance")]
    fn clamp_rejects_large_negative() {
        let mut x = vec![-0.5];
        clamp_nonnegative(&mut x, 1e-12);
    }
}
