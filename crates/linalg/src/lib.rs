//! # slb-linalg
//!
//! Self-contained dense and sparse linear algebra for matrix-geometric
//! queueing analysis.
//!
//! This crate provides exactly the numeric substrate needed by the
//! quasi-birth-death (QBD) machinery in `slb-qbd`, the Markov solvers in
//! `slb-markov` and the bound models in `slb-core`: a dense row-major
//! [`Matrix`] of `f64`, LU decomposition with partial pivoting ([`Lu`]),
//! linear solves, inverses, determinants, norms, spectral utilities, and a
//! compressed-sparse-row [`CsrMatrix`] (with its [`CooBuilder`]) that the
//! whole solver stack shares for large, structurally sparse generators.
//! It also hosts the cooperative-cancellation primitives ([`Budget`],
//! [`CancelToken`]) every iterative solve above it polls, so the whole
//! stack shares one interruption vocabulary. Its only dependency is the
//! workspace's vendored `slb-fault` fail-point registry (free when
//! disarmed), which those primitives use for chaos injection.
//!
//! The matrix-geometric method of Neuts repeatedly forms expressions such
//! as `(−A1)⁻¹ A0`, `R = −A0 (A1 + A0 G)⁻¹` and `(I − R)⁻¹ e`; all of them
//! reduce to the LU solve implemented here.
//!
//! ## Example
//!
//! ```
//! use slb_linalg::Matrix;
//!
//! # fn main() -> Result<(), slb_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]])?;
//! let b = vec![1.0, 2.0];
//! let x = a.solve_vec(&b)?;
//! let r = a.mat_vec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod error;
mod gs;
mod lu;
mod matrix;
mod ops;
mod sparse;
mod spectral;
pub mod vector;
mod workspace;

pub use budget::{Budget, CancelToken};
pub use error::LinalgError;
pub use gs::{null_vector_gs, null_vector_gs_budgeted, NullVector};
pub use lu::Lu;
pub use matrix::Matrix;
pub use sparse::{CooBuilder, CsrMatrix};
pub use spectral::{
    power_iteration, power_iteration_op, power_iteration_sparse, spectral_radius_upper_bound,
    spectral_radius_upper_bound_sparse, LinearOperator, PowerIteration,
};
pub use workspace::Workspace;

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
