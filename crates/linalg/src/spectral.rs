//! Spectral utilities: power iteration for the dominant eigenpair and a
//! cheap spectral-radius upper bound.
//!
//! The QBD stability analysis needs `sp(R) < 1`; the rate matrix `R` is
//! nonnegative, so power iteration converges to its Perron root from a
//! positive start vector, and `min(‖R‖₁, ‖R‖_∞)` is a certified upper
//! bound.

use crate::{LinalgError, Matrix, Result};

/// Result of a converged power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIteration {
    /// Estimated dominant eigenvalue (in modulus).
    pub eigenvalue: f64,
    /// Corresponding right eigenvector, normalized to unit 1-norm.
    pub eigenvector: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Estimates the dominant eigenvalue of a square matrix by power iteration.
///
/// Starts from the uniform positive vector, which is adequate for the
/// nonnegative matrices this project applies it to (rate matrices `R`,
/// stochastic matrices `G`).
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::NoConvergence`] if the eigenvalue estimate has not
///   stabilized to within `tol` after `max_iter` iterations.
///
/// # Example
///
/// ```
/// use slb_linalg::{power_iteration, Matrix};
///
/// # fn main() -> Result<(), slb_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 0.5]])?;
/// let p = power_iteration(&a, 1e-12, 10_000)?;
/// assert!((p.eigenvalue - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn power_iteration(a: &Matrix, tol: f64, max_iter: usize) -> Result<PowerIteration> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut v = vec![1.0 / n as f64; n];
    let mut lambda = 0.0_f64;
    for it in 1..=max_iter {
        let mut w = a.mat_vec(&v);
        let norm = crate::vector::norm_one(&w);
        if norm == 0.0 {
            // a annihilates the positive cone only if it is nilpotent on
            // it; the dominant eigenvalue is 0.
            return Ok(PowerIteration {
                eigenvalue: 0.0,
                eigenvector: v,
                iterations: it,
            });
        }
        for x in &mut w {
            *x /= norm;
        }
        let new_lambda = crate::vector::dot(&a.mat_vec(&w), &w)
            / crate::vector::dot(&w, &w);
        let done = (new_lambda - lambda).abs() <= tol * (1.0 + new_lambda.abs());
        lambda = new_lambda;
        v = w;
        if done && it > 1 {
            return Ok(PowerIteration {
                eigenvalue: lambda,
                eigenvector: v,
                iterations: it,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        method: "power_iteration",
        iterations: max_iter,
        residual: f64::NAN,
    })
}

/// A certified upper bound on the spectral radius:
/// `sp(A) ≤ min(‖A‖₁, ‖A‖_∞)`.
pub fn spectral_radius_upper_bound(a: &Matrix) -> f64 {
    a.norm_one().min(a.norm_inf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_dominant_eigenvalue() {
        let a = Matrix::from_diag(&[3.0, 1.0, 0.5]);
        let p = power_iteration(&a, 1e-13, 10_000).unwrap();
        assert!((p.eigenvalue - 3.0).abs() < 1e-8, "{p:?}");
    }

    #[test]
    fn stochastic_matrix_has_unit_radius() {
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
        let p = power_iteration(&a, 1e-13, 10_000).unwrap();
        assert!((p.eigenvalue - 1.0).abs() < 1e-9);
        assert!(spectral_radius_upper_bound(&a) >= 1.0 - 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let p = power_iteration(&a, 1e-12, 100).unwrap();
        assert_eq!(p.eigenvalue, 0.0);
    }

    #[test]
    fn norm_bound_dominates() {
        let a = Matrix::from_rows(&[&[0.1, 0.7], &[0.2, 0.05]]).unwrap();
        let p = power_iteration(&a, 1e-13, 10_000).unwrap();
        assert!(p.eigenvalue <= spectral_radius_upper_bound(&a) + 1e-12);
    }

    #[test]
    fn rectangular_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            power_iteration(&a, 1e-12, 10),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
