//! Spectral utilities: power iteration for the dominant eigenpair and a
//! cheap spectral-radius upper bound.
//!
//! The QBD stability analysis needs `sp(R) < 1`; the rate matrix `R` is
//! nonnegative, so power iteration converges to its Perron root from a
//! positive start vector, and `min(‖R‖₁, ‖R‖_∞)` is a certified upper
//! bound.
//!
//! The iteration itself is written against the [`LinearOperator`]
//! abstraction, so the same code runs on a dense [`Matrix`] or a sparse
//! [`CsrMatrix`]; stationary solves on large truncated state spaces use
//! the sparse path ([`power_iteration_sparse`]) and never materialize a
//! dense operator.

use crate::{CsrMatrix, LinalgError, Matrix, Result};

/// A square linear map exposing only `y = A·x` — everything power
/// iteration needs. Implemented by [`Matrix`] (dense, `O(n²)` per apply)
/// and [`CsrMatrix`] (sparse, `O(nnz)` per apply).
pub trait LinearOperator {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A·x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len()` or `y.len()` differ from
    /// [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOperator for Matrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.mat_vec_into(x, y);
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.mat_vec_into(x, y);
    }
}

/// Result of a converged power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIteration {
    /// Estimated dominant eigenvalue (in modulus).
    pub eigenvalue: f64,
    /// Corresponding right eigenvector, normalized to unit 1-norm.
    pub eigenvector: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Estimates the dominant eigenvalue of a square dense matrix by power
/// iteration. Thin wrapper over [`power_iteration_op`].
///
/// Starts from the uniform positive vector, which is adequate for the
/// nonnegative matrices this project applies it to (rate matrices `R`,
/// stochastic matrices `G`).
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::NoConvergence`] if the eigenvalue estimate has not
///   stabilized to within `tol` after `max_iter` iterations.
///
/// # Example
///
/// ```
/// use slb_linalg::{power_iteration, Matrix};
///
/// # fn main() -> Result<(), slb_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 0.5]])?;
/// let p = power_iteration(&a, 1e-12, 10_000)?;
/// assert!((p.eigenvalue - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn power_iteration(a: &Matrix, tol: f64, max_iter: usize) -> Result<PowerIteration> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    power_iteration_op(a, tol, max_iter)
}

/// Estimates the dominant eigenvalue of a sparse matrix by power
/// iteration on the CSR matvec — `O(nnz)` per step instead of `O(n²)`.
///
/// # Errors
///
/// As [`power_iteration`].
///
/// # Example
///
/// ```
/// use slb_linalg::{power_iteration_sparse, CsrMatrix};
///
/// # fn main() -> Result<(), slb_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, [(0, 0, 2.0), (1, 1, 0.5)])?;
/// let p = power_iteration_sparse(&a, 1e-12, 10_000)?;
/// assert!((p.eigenvalue - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn power_iteration_sparse(a: &CsrMatrix, tol: f64, max_iter: usize) -> Result<PowerIteration> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    power_iteration_op(a, tol, max_iter)
}

/// Power iteration against any [`LinearOperator`] — the single
/// implementation behind both the dense and sparse entry points.
///
/// # Errors
///
/// [`LinalgError::NoConvergence`] if the eigenvalue estimate has not
/// stabilized to within `tol` after `max_iter` iterations.
///
/// # Panics
///
/// [`LinearOperator`] promises a *square* map; handing this a
/// rectangular matrix panics inside `apply` on the dimension assert.
/// Use [`power_iteration`] / [`power_iteration_sparse`], which return
/// [`LinalgError::NotSquare`] instead, unless squareness is guaranteed.
pub fn power_iteration_op<A: LinearOperator + ?Sized>(
    a: &A,
    tol: f64,
    max_iter: usize,
) -> Result<PowerIteration> {
    let n = a.dim();
    let mut v = vec![1.0 / n as f64; n];
    let mut w = vec![0.0; n];
    let mut aw = vec![0.0; n];
    let mut lambda = 0.0_f64;
    for it in 1..=max_iter {
        a.apply(&v, &mut w);
        let norm = crate::vector::norm_one(&w);
        if norm == 0.0 {
            // a annihilates the positive cone only if it is nilpotent on
            // it; the dominant eigenvalue is 0.
            return Ok(PowerIteration {
                eigenvalue: 0.0,
                eigenvector: v,
                iterations: it,
            });
        }
        for x in &mut w {
            *x /= norm;
        }
        a.apply(&w, &mut aw);
        let new_lambda = crate::vector::dot(&aw, &w) / crate::vector::dot(&w, &w);
        let done = (new_lambda - lambda).abs() <= tol * (1.0 + new_lambda.abs());
        lambda = new_lambda;
        std::mem::swap(&mut v, &mut w);
        if done && it > 1 {
            return Ok(PowerIteration {
                eigenvalue: lambda,
                eigenvector: v,
                iterations: it,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        method: "power_iteration",
        iterations: max_iter,
        residual: f64::NAN,
    })
}

/// A certified upper bound on the spectral radius:
/// `sp(A) ≤ min(‖A‖₁, ‖A‖_∞)`.
pub fn spectral_radius_upper_bound(a: &Matrix) -> f64 {
    a.norm_one().min(a.norm_inf())
}

/// Sparse counterpart of [`spectral_radius_upper_bound`].
pub fn spectral_radius_upper_bound_sparse(a: &CsrMatrix) -> f64 {
    a.norm_one().min(a.norm_inf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_dominant_eigenvalue() {
        let a = Matrix::from_diag(&[3.0, 1.0, 0.5]);
        let p = power_iteration(&a, 1e-13, 10_000).unwrap();
        assert!((p.eigenvalue - 3.0).abs() < 1e-8, "{p:?}");
    }

    #[test]
    fn stochastic_matrix_has_unit_radius() {
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
        let p = power_iteration(&a, 1e-13, 10_000).unwrap();
        assert!((p.eigenvalue - 1.0).abs() < 1e-9);
        assert!(spectral_radius_upper_bound(&a) >= 1.0 - 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let p = power_iteration(&a, 1e-12, 100).unwrap();
        assert_eq!(p.eigenvalue, 0.0);
    }

    #[test]
    fn norm_bound_dominates() {
        let a = Matrix::from_rows(&[&[0.1, 0.7], &[0.2, 0.05]]).unwrap();
        let p = power_iteration(&a, 1e-13, 10_000).unwrap();
        assert!(p.eigenvalue <= spectral_radius_upper_bound(&a) + 1e-12);
    }

    #[test]
    fn rectangular_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            power_iteration(&a, 1e-12, 10),
            Err(LinalgError::NotSquare { .. })
        ));
        let s = CsrMatrix::from_dense(&a, 0.0);
        assert!(matches!(
            power_iteration_sparse(&s, 1e-12, 10),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn sparse_matches_dense() {
        let d = Matrix::from_rows(&[&[0.2, 0.7, 0.0], &[0.0, 0.1, 0.5], &[0.3, 0.0, 0.4]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 0.0);
        let pd = power_iteration(&d, 1e-13, 100_000).unwrap();
        let ps = power_iteration_sparse(&s, 1e-13, 100_000).unwrap();
        assert!((pd.eigenvalue - ps.eigenvalue).abs() < 1e-10);
        assert!(
            (spectral_radius_upper_bound(&d) - spectral_radius_upper_bound_sparse(&s)).abs()
                < 1e-15
        );
    }

    #[test]
    fn sparse_stochastic_large() {
        // Ring DTMC on 500 states: dominant eigenvalue 1, O(nnz) per step.
        let n = 500;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, (i + 1) % n, 0.6));
            t.push((i, i, 0.4));
        }
        let p = CsrMatrix::from_triplets(n, n, t).unwrap();
        let r = power_iteration_sparse(&p, 1e-12, 100_000).unwrap();
        assert!((r.eigenvalue - 1.0).abs() < 1e-9);
    }
}
