//! Compressed sparse row (CSR) matrices — the shared sparse kernel of the
//! solver stack.
//!
//! The SQ(d) ground-truth chains, the QBD truncated generators and the
//! uniformized transition operators are all *structurally* sparse: a state
//! has at most `O(N)` outgoing transitions while the state space has tens
//! of thousands of states. Storing them densely wastes `O(n²)` space and
//! turns every matrix–vector product into `O(n²)` work; this module keeps
//! them in CSR form so the iterative solvers in `slb-markov`, `slb-qbd`
//! and `slb-core::brute` share one `O(nnz)` kernel.
//!
//! Build incrementally with [`CooBuilder`] (duplicates are summed), or
//! convert an existing dense [`Matrix`] with [`CsrMatrix::from_dense`].
//!
//! # Example
//!
//! ```
//! use slb_linalg::CooBuilder;
//!
//! # fn main() -> Result<(), slb_linalg::LinalgError> {
//! let mut b = CooBuilder::new(2, 2);
//! b.add(0, 0, -2.0)?;
//! b.add(0, 1, 2.0)?;
//! b.add(1, 0, 1.0)?;
//! b.add(1, 1, -1.0)?;
//! let q = b.build();
//! // y = Q·x
//! let y = q.mat_vec(&[1.0, 0.0]);
//! assert_eq!(y, vec![-2.0, 1.0]);
//! // x·Q (transpose-matvec): the flow balance form used by π·Q = 0.
//! let pi = [1.0 / 3.0, 2.0 / 3.0];
//! let r = q.vec_mat(&pi);
//! assert!(r.iter().all(|v| v.abs() < 1e-15));
//! # Ok(())
//! # }
//! ```

use crate::{LinalgError, Matrix, Result};

/// Incremental coordinate-format builder for [`CsrMatrix`].
///
/// Entries may be added in any order; duplicate coordinates are **summed**
/// (the natural semantics for accumulating transition rates). Rows are kept
/// separately so building the final CSR is a per-row sort, `O(nnz log k)`
/// for maximum row length `k`.
#[derive(Debug, Clone)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<Vec<(usize, f64)>>,
}

impl CooBuilder {
    /// An empty builder for a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix must be non-empty");
        CooBuilder {
            rows,
            cols,
            entries: vec![Vec::new(); rows],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries. Entries inserted via [`CooBuilder::add`]
    /// are merged on insertion, so for that path this equals the final
    /// [`CsrMatrix::nnz`]; [`CooBuilder::add_dense_block`] may leave
    /// duplicates that only collapse in [`CooBuilder::build`], making this
    /// an upper bound.
    pub fn raw_len(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Adds `value` at `(row, col)`, summing with any entry already there.
    /// Exact zeros are accepted and dropped.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if the coordinates are out of range or
    /// the value is non-finite.
    pub fn add(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "entry ({row}, {col}) out of range for {}x{} matrix",
                    self.rows, self.cols
                ),
            });
        }
        if !value.is_finite() {
            return Err(LinalgError::InvalidInput {
                reason: format!("non-finite value {value} at ({row}, {col})"),
            });
        }
        if value == 0.0 {
            return Ok(());
        }
        // Merge duplicates eagerly so repeated accumulation (e.g. redirected
        // transition rates) stays compact; rows are short in practice.
        if let Some(e) = self.entries[row].iter_mut().find(|(c, _)| *c == col) {
            e.1 += value;
        } else {
            self.entries[row].push((col, value));
        }
        Ok(())
    }

    /// Iterates over the stored entries of one row as `(col, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries[row].iter().copied()
    }

    /// Adds every non-zero of a dense block with its top-left corner at
    /// `(r0, c0)` — the block-matrix assembly primitive used by the QBD
    /// generators.
    ///
    /// Entries are appended without the per-entry duplicate scan of
    /// [`CooBuilder::add`] (a block's coordinates are distinct by
    /// construction, and wide QBD blocks would otherwise pay a quadratic
    /// scan per row); any overlap with previously added entries is summed
    /// when [`CooBuilder::build`] merges duplicates.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if the block overhangs the matrix or
    /// contains a non-finite value; the builder is left untouched on
    /// error (all validation happens before the first insertion).
    pub fn add_dense_block(&mut self, r0: usize, c0: usize, block: &Matrix) -> Result<()> {
        if r0 + block.rows() > self.rows || c0 + block.cols() > self.cols {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "{}x{} block at ({r0}, {c0}) overhangs {}x{} matrix",
                    block.rows(),
                    block.cols(),
                    self.rows,
                    self.cols
                ),
            });
        }
        if !block.is_finite() {
            return Err(LinalgError::InvalidInput {
                reason: format!("block at ({r0}, {c0}) contains a non-finite value"),
            });
        }
        for r in 0..block.rows() {
            for (c, &v) in block.row(r).iter().enumerate() {
                if v != 0.0 {
                    self.entries[r0 + r].push((c0 + c, v));
                }
            }
        }
        Ok(())
    }

    /// Freezes the builder into a [`CsrMatrix`], summing any duplicate
    /// coordinates left by [`CooBuilder::add_dense_block`].
    pub fn build(&self) -> CsrMatrix {
        let nnz = self.raw_len();
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(nnz);
        let mut values: Vec<f64> = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in &self.entries {
            let mut sorted: Vec<(usize, f64)> = row.clone();
            sorted.sort_unstable_by_key(|&(c, _)| c);
            let row_start = col_idx.len();
            for (c, v) in sorted {
                if col_idx.len() > row_start && *col_idx.last().expect("non-empty") == c {
                    *values.last_mut().expect("non-empty") += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// An immutable sparse matrix in compressed sparse row format.
///
/// Within each row, column indices are strictly increasing and values are
/// finite; these invariants are established by every constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from coordinate triplets; duplicates are summed.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] for empty dimensions, out-of-range
    /// coordinates or non-finite values.
    pub fn from_triplets<I>(rows: usize, cols: usize, triplets: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidInput {
                reason: format!("matrix must be non-empty, got {rows}x{cols}"),
            });
        }
        let mut b = CooBuilder::new(rows, cols);
        for (r, c, v) in triplets {
            b.add(r, c, v)?;
        }
        Ok(b.build())
    }

    /// Compresses a dense matrix, dropping entries with `|a| ≤ drop_tol`
    /// (use `0.0` to keep every non-zero exactly).
    ///
    /// # Panics
    ///
    /// Panics if the matrix contains a non-finite value — silently
    /// dropping a `NaN` (or carrying an `∞`) would violate the finiteness
    /// invariant every other constructor enforces with an error.
    pub fn from_dense(dense: &Matrix, drop_tol: f64) -> Self {
        assert!(
            dense.is_finite(),
            "from_dense: matrix contains a non-finite value"
        );
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v.abs() > drop_tol {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Expands to a dense [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of row `r` as `(col, value)`, in
    /// increasing column order.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// The entry at `(r, c)` (zero when not stored).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        match self.col_idx[span.clone()].binary_search(&c) {
            Ok(k) => self.values[span.start + k],
            Err(_) => 0.0,
        }
    }

    /// `y = A·x` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mat_vec_into(x, &mut y);
        y
    }

    /// `y = A·x` into a caller-provided buffer — the allocation-free hot
    /// path used by the iterative solvers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    #[inline]
    pub fn mat_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mat_vec: x has wrong length");
        assert_eq!(y.len(), self.rows, "mat_vec: y has wrong length");
        // Iterator-based row walk: one pair of slices per row, no
        // per-element bounds check on the CSR arrays.
        for (yr, (cols, vals)) in y.iter_mut().zip(
            self.row_ptr
                .windows(2)
                .map(|w| (&self.col_idx[w[0]..w[1]], &self.values[w[0]..w[1]])),
        ) {
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c];
            }
            *yr = acc;
        }
    }

    /// `y = x·A` (equivalently `Aᵀ·x`) into a fresh vector — the
    /// transpose-matvec used by stationary solves `π·Q = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vec_mat(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.vec_mat_into(x, &mut y);
        y
    }

    /// `y = x·A` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn vec_mat_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "vec_mat: x has wrong length");
        assert_eq!(y.len(), self.cols, "vec_mat: y has wrong length");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            for (c, v) in self.col_idx[span.clone()].iter().zip(&self.values[span]) {
                y[*c] += xr * v;
            }
        }
    }

    /// The transpose, again in CSR form (an `O(nnz)` counting sort).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols];
        for &c in &self.col_idx {
            counts[c] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.cols + 1);
        row_ptr.push(0);
        for c in 0..self.cols {
            row_ptr.push(row_ptr[c] + counts[c]);
        }
        let mut next = row_ptr[..self.cols].to_vec();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let k = next[c];
                col_idx[k] = r;
                values[k] = v;
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Row-scaling `diag(d)·A`: multiplies row `r` by `d[r]`. This is the
    /// kernel behind uniformization (`Q/Λ`) and Jacobi preconditioning
    /// (`D⁻¹·Q`).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `d.len() != rows`.
    pub fn scale_rows(&self, d: &[f64]) -> Result<CsrMatrix> {
        if d.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "scale_rows",
                lhs: self.shape(),
                rhs: (d.len(), 1),
            });
        }
        let mut out = self.clone();
        for (r, &dr) in d.iter().enumerate() {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            for v in &mut out.values[span] {
                *v *= dr;
            }
        }
        Ok(out)
    }

    /// `A + s·I`, merging the shift into existing diagonal entries and
    /// materializing missing ones. Used to form uniformized operators
    /// `P = I + Q/Λ` without going dense.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn plus_scaled_identity(&self, s: f64) -> Result<CsrMatrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut b = CooBuilder::new(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                b.add(r, c, v)?;
            }
            b.add(r, r, s)?;
        }
        Ok(b.build())
    }

    /// Maximum absolute row sum (the operator ∞-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute column sum (the operator 1-norm).
    pub fn norm_one(&self) -> f64 {
        let mut col_sums = vec![0.0f64; self.cols];
        for (c, v) in self.col_idx.iter().zip(&self.values) {
            col_sums[*c] += v.abs();
        }
        col_sums.into_iter().fold(0.0, f64::max)
    }

    /// Largest entry magnitude (zero for an all-zero matrix).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Per-row sums `A·e` — outflow rates when `A` holds transition rates.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1  0  2 ]
        // [ 0  3  0 ]
        CsrMatrix::from_triplets(2, 3, [(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap()
    }

    #[test]
    fn shape_and_entries() {
        let a = sample();
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert!(!a.is_square());
    }

    #[test]
    fn duplicates_sum_and_zeros_drop() {
        let a = CsrMatrix::from_triplets(2, 2, [(0, 1, 1.0), (0, 1, 2.5), (1, 0, 0.0)]).unwrap();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 3.5);
    }

    #[test]
    fn invalid_triplets_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, [(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, [(0, 0, f64::NAN)]).is_err());
        assert!(CsrMatrix::from_triplets(0, 2, []).is_err());
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = sample();
        assert_eq!(a.mat_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(a.vec_mat(&[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
        // vec_mat(A) == mat_vec(Aᵀ).
        let at = a.transpose();
        assert_eq!(at.mat_vec(&[1.0, 1.0]), a.vec_mat(&[1.0, 1.0]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 0), 2.0);
    }

    #[test]
    fn dense_round_trip() {
        let d = Matrix::from_rows(&[&[0.0, 1.5], &[-2.0, 0.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 2);
        assert!(s.to_dense().approx_eq(&d, 0.0));
        // Drop tolerance removes small entries.
        let s = CsrMatrix::from_dense(&d, 1.6);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(1, 0), -2.0);
    }

    #[test]
    fn scaling_kernels() {
        let a = sample();
        assert_eq!(a.scale(2.0).get(0, 2), 4.0);
        let rs = a.scale_rows(&[2.0, -1.0]).unwrap();
        assert_eq!(rs.get(0, 0), 2.0);
        assert_eq!(rs.get(1, 1), -3.0);
        assert!(a.scale_rows(&[1.0]).is_err());
    }

    #[test]
    fn scaled_identity_uniformization() {
        // Q of a 2-state chain, Λ = 2: P = I + Q/Λ is stochastic.
        let q =
            CsrMatrix::from_triplets(2, 2, [(0, 0, -2.0), (0, 1, 2.0), (1, 0, 1.0), (1, 1, -1.0)])
                .unwrap();
        let p = q.scale(1.0 / 2.0).plus_scaled_identity(1.0).unwrap();
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-15);
        }
        assert!(sample().plus_scaled_identity(1.0).is_err());
    }

    #[test]
    fn norms() {
        let a = sample();
        assert_eq!(a.norm_inf(), 3.0); // max row sum
        assert_eq!(a.norm_one(), 3.0); // max col sum
        assert_eq!(a.max_abs(), 3.0);
        assert_eq!(a.row_sums(), vec![3.0, 3.0]);
    }

    #[test]
    fn dense_block_overlap_merges_at_build() {
        let mut b = CooBuilder::new(2, 2);
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).unwrap();
        b.add_dense_block(0, 0, &m).unwrap();
        b.add_dense_block(0, 0, &m).unwrap();
        b.add(0, 0, 0.5).unwrap();
        let a = b.build();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 2.5);
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 1), 6.0);
        // Overhanging block rejected up front.
        assert!(b.add_dense_block(1, 1, &m).is_err());
    }

    #[test]
    fn builder_row_entries() {
        let mut b = CooBuilder::new(2, 2);
        b.add(0, 1, 1.0).unwrap();
        b.add(0, 1, 1.0).unwrap();
        assert_eq!(b.row_entries(0).collect::<Vec<_>>(), vec![(1, 2.0)]);
        assert_eq!(b.raw_len(), 1);
    }
}
