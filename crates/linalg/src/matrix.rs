use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64`.
///
/// This is the workhorse type of the crate. It is deliberately simple —
/// owned storage, no views, no generics — because every matrix in the QBD
/// pipeline is a small-to-medium dense block (at most a few thousand rows)
/// of transition rates.
///
/// # Example
///
/// ```
/// use slb_linalg::Matrix;
///
/// let i = Matrix::identity(3);
/// let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f64);
/// let b = i.mat_mul(&a).unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`; zero-sized matrices are never
    /// meaningful in this crate and allowing them would push degenerate-case
    /// handling into every algorithm.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `rows` is empty, any row is
    /// empty, or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidInput {
                reason: "from_rows requires at least one non-empty row".into(),
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidInput {
                reason: "from_rows requires rows of equal length".into(),
            });
        }
        let mut m = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            m.data[r * cols..(r + 1) * cols].copy_from_slice(row);
        }
        Ok(m)
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `data.len() != rows * cols`
    /// or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidInput {
                reason: "matrix dimensions must be positive".into(),
            });
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "from_vec: expected {} elements for a {rows}x{cols} matrix, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a diagonal matrix with `diag` on the main diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// A borrowed view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as contiguous slices — the bounds-check-free
    /// row access the streaming kernels (matvec, norms, row sums) build on.
    #[inline]
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Mutable counterpart of [`Matrix::rows_iter`].
    #[inline]
    pub fn rows_mut_iter(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_exact_mut(self.cols)
    }

    /// Two disjoint mutable row views `(row i, row j)` with `i ≠ j` — the
    /// primitive behind in-place row swaps and eliminations.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of bounds.
    #[inline]
    pub(crate) fn rows_mut_pair(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert!(i != j && i < self.rows && j < self.rows, "invalid row pair");
        let c = self.cols;
        if i < j {
            let (head, tail) = self.data.split_at_mut(j * c);
            (&mut head[i * c..(i + 1) * c], &mut tail[..c])
        } else {
            let (head, tail) = self.data.split_at_mut(i * c);
            (&mut tail[..c], &mut head[j * c..(j + 1) * c])
        }
    }

    /// Sets every entry to `v` (e.g. `fill(0.0)` to clear recycled
    /// workspace scratch).
    #[inline]
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Overwrites `self` with the entries of `src` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[inline]
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from: shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage (crate-internal;
    /// arithmetic helpers in `ops` use it to stream over all entries).
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut t);
        t
    }

    /// Writes the transpose into a caller-provided matrix of shape
    /// `(cols, rows)` — the allocation-free sibling of
    /// [`Matrix::transpose`].
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong shape.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: output shape mismatch"
        );
        for (r, row) in self.rows_iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                out[(c, r)] = v;
            }
        }
    }

    /// Extracts the sub-matrix with rows `r0..r0+nr` and columns
    /// `c0..c0+nc`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block ({r0}..{}, {c0}..{}) out of bounds for {}x{}",
            r0 + nr,
            c0 + nc,
            self.rows,
            self.cols
        );
        Matrix::from_fn(nr, nc, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Overwrites the block with top-left corner `(r0, c0)` with `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "set_block out of bounds"
        );
        for r in 0..src.rows {
            for c in 0..src.cols {
                self[(r0 + r, c0 + c)] = src[(r, c)];
            }
        }
    }

    /// Maximum absolute entry (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Infinity norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        self.rows_iter()
            .map(|row| row.iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// One norm: maximum absolute column sum.
    pub fn norm_one(&self) -> f64 {
        (0..self.cols)
            .map(|c| (0..self.rows).map(|r| self[(r, c)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of each row, as a vector (i.e. `A·e` with `e` all ones).
    pub fn row_sums(&self) -> Vec<f64> {
        self.rows_iter()
            .map(|row| row.iter().sum::<f64>())
            .collect()
    }

    /// `max_{i,j} |self[i,j] − other[i,j]|` without materializing the
    /// difference — the convergence check of every fixed-point loop.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// `‖self − other‖∞` (maximum absolute row sum of the difference)
    /// without materializing the difference matrix. Evaluates exactly the
    /// same sums as `(&a - &b).norm_inf()`, term for term.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn norm_inf_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "norm_inf_diff: shape mismatch");
        self.rows_iter()
            .zip(other.rows_iter())
            .map(|(ra, rb)| ra.iter().zip(rb).map(|(a, b)| (a - b).abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if the two matrices have the same shape and all entries agree
    /// within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        // Cap the printout so debugging a 400x400 QBD block stays readable.
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(max_show) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>10.4e}", self[(r, c)])?;
            }
            if self.cols > max_show {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zeros_rejects_empty() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn block_and_set_block() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let b = a.block(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], a[(1, 2)]);
        assert_eq!(b[(1, 1)], a[(2, 3)]);

        let mut z = Matrix::zeros(4, 4);
        z.set_block(2, 2, &b);
        assert_eq!(z[(2, 2)], a[(1, 2)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(a.norm_one(), 6.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.norm_frobenius() - 30.0_f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn row_sums_and_col() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row_sums(), vec![3.0, 7.0]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 0)] = 1.0 + 1e-12;
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
    }

    #[test]
    fn from_diag() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a:?}").is_empty());
        // Large matrices truncate instead of flooding the log.
        let big = Matrix::zeros(100, 100);
        assert!(format!("{big:?}").len() < 2000);
    }
}
