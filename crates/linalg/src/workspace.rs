//! A pool of same-shape scratch matrices for allocation-free iteration
//! loops.

use crate::Matrix;

/// A reusable pool of `rows × cols` scratch matrices.
///
/// Matrix-analytic iterations (logarithmic reduction, cyclic reduction,
/// the fixed-point `G` maps) need a handful of same-shape temporaries per
/// step. Allocating them anew every iteration dominates the runtime for
/// small blocks and fragments the heap for large ones; a `Workspace`
/// hands out scratch matrices ([`Workspace::take`]) and accepts them back
/// ([`Workspace::put`]), so after the pool has warmed up — at most the
/// peak number of simultaneously live temporaries — the steady-state loop
/// performs **zero heap allocation**.
///
/// Contents of a matrix returned by [`Workspace::take`] are unspecified
/// (it is whatever the previous user left behind); every kernel in this
/// crate that writes into an `out` matrix overwrites it completely, so no
/// clearing pass is needed.
///
/// # Example
///
/// ```
/// use slb_linalg::{Matrix, Workspace};
///
/// # fn main() -> Result<(), slb_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let mut ws = Workspace::square(2);
///
/// // A fixed-point style loop: all temporaries come from the pool.
/// let mut acc = ws.take(); // will hold a² each round
/// for _ in 0..3 {
///     let mut tmp = ws.take();
///     a.mul_into(&a, &mut tmp)?; // tmp = a·a, no allocation after warm-up
///     acc.copy_from(&tmp);
///     ws.put(tmp);
/// }
/// assert_eq!(acc[(0, 0)], 7.0);
/// ws.put(acc);
/// assert_eq!(ws.pooled(), 2); // both scratch matrices returned
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Workspace {
    rows: usize,
    cols: usize,
    pool: Vec<Matrix>,
}

impl Workspace {
    /// An empty pool of `rows × cols` scratch matrices.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero (as [`Matrix::zeros`] would).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "workspace dimensions must be positive"
        );
        Workspace {
            rows,
            cols,
            pool: Vec::new(),
        }
    }

    /// An empty pool of `n × n` scratch matrices.
    pub fn square(n: usize) -> Self {
        Workspace::new(n, n)
    }

    /// Shape of the matrices this pool manages.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Takes a scratch matrix out of the pool, allocating a zero matrix
    /// only when the pool is empty (i.e. during warm-up). The contents of
    /// a recycled matrix are unspecified.
    pub fn take(&mut self) -> Matrix {
        self.pool
            .pop()
            .unwrap_or_else(|| Matrix::zeros(self.rows, self.cols))
    }

    /// Returns a scratch matrix to the pool for reuse.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not have this pool's shape — mixing shapes would
    /// silently hand wrong-sized scratch to a later `take`.
    pub fn put(&mut self, m: Matrix) {
        assert_eq!(
            m.shape(),
            (self.rows, self.cols),
            "workspace: returned matrix has the wrong shape"
        );
        self.pool.push(m);
    }

    /// Number of matrices currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Pre-allocates the pool to hold at least `n` matrices, so even the
    /// first iteration of a loop runs allocation-free.
    pub fn warm_up(&mut self, n: usize) {
        while self.pool.len() < n {
            let m = Matrix::zeros(self.rows, self.cols);
            self.pool.push(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles() {
        let mut ws = Workspace::square(3);
        assert_eq!(ws.pooled(), 0);
        let a = ws.take();
        assert_eq!(a.shape(), (3, 3));
        ws.put(a);
        assert_eq!(ws.pooled(), 1);
        let _b = ws.take();
        assert_eq!(ws.pooled(), 0); // recycled, not reallocated
    }

    #[test]
    fn warm_up_prefills() {
        let mut ws = Workspace::new(2, 4);
        ws.warm_up(3);
        assert_eq!(ws.pooled(), 3);
        assert_eq!(ws.take().shape(), (2, 4));
    }

    #[test]
    #[should_panic(expected = "wrong shape")]
    fn put_rejects_foreign_shape() {
        let mut ws = Workspace::square(2);
        ws.put(Matrix::zeros(3, 3));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        let _ = Workspace::new(0, 1);
    }
}
