//! Cooperative cancellation for long-running iterative solves.
//!
//! Production-size lumped solves run for minutes (the N = 512 lower
//! bound is a ~6.5-minute Gauss–Seidel solve), and they execute inside a
//! serving stack with per-request deadlines and a SIGINT-driven sweep
//! runner. Neither can afford to *preempt* a solve — the kernels own
//! scratch workspaces and partial iterates — so interruption is
//! cooperative: every unbounded or iterative loop in the numeric stack
//! carries a [`Budget`] and polls [`Budget::check`] once per iteration
//! batch (one Gauss–Seidel sweep, one logarithmic-reduction doubling,
//! one bisection step, a block of simulated events).
//!
//! A budget combines three independent triggers:
//!
//! * a **wall-clock deadline** ([`Budget::with_deadline_at`]), used by
//!   `slb serve` to abort a solve the moment the request deadline
//!   passes instead of discarding a completed answer;
//! * an **external cancel flag** ([`CancelToken`], one relaxed atomic
//!   load), used by `slb sweep` to drain in-flight grid points on
//!   SIGINT; and
//! * the **`solver.cancel` fail point** (`vendor/fault`), so chaos
//!   tests can inject a mid-solve abort deterministically. The sibling
//!   point `solver.slow_iter` injects a 1 ms stall per check instead,
//!   turning any solve into a deliberately slow one.
//!
//! The disarmed fast path of a [`Budget::unlimited`] check is two
//! relaxed atomic loads and a branch — cheap enough to sit inside the
//! gated kernel benches without moving them.
//!
//! An exceeded budget surfaces as [`LinalgError::Interrupted`] carrying
//! the iterations completed, the residual at the point of interruption
//! and the elapsed wall-clock time, so callers can report exactly how
//! far a solve got.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{LinalgError, Result};

/// A shared, clonable cancellation flag.
///
/// Cloning is shallow: all clones observe the same flag, so a token can
/// be handed to worker threads while the coordinator keeps the original
/// to [`cancel`](CancelToken::cancel) them all. Checking the flag is a
/// single relaxed atomic load.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every budget sharing this token interrupts at
    /// its next check. Idempotent and irrevocable.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any
    /// clone of this token.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Two tokens are equal when they share the same underlying flag; a
/// clone compares equal to its original, two fresh tokens do not.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// A cancellation budget for one solve: optional wall-clock deadline
/// plus optional [`CancelToken`], stamped with its creation instant so
/// interruptions can report elapsed time.
///
/// Budgets are cheap to clone and intended to be threaded by value
/// through solver options (`SparseSolveOptions` in `slb-qbd` embeds
/// one). Equality ignores the creation stamp: two unlimited budgets
/// compare equal regardless of when they were built, which keeps
/// options types derivable.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    started: Instant,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.cancel == other.cancel
    }
}

impl Budget {
    /// A budget with no deadline and no cancel token. Checks still
    /// consult the `solver.cancel` / `solver.slow_iter` fail points, so
    /// chaos tests can interrupt even "unlimited" solves.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            cancel: None,
            started: Instant::now(),
        }
    }

    /// An unlimited budget that expires `limit` from now.
    #[must_use]
    pub fn with_deadline(limit: Duration) -> Self {
        Budget::unlimited().deadline(limit)
    }

    /// An unlimited budget that expires at `deadline` (an absolute
    /// instant, e.g. a request deadline computed at read time).
    #[must_use]
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Budget::unlimited().deadline_at(deadline)
    }

    /// Returns this budget with the deadline set to `limit` from now.
    #[must_use]
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Returns this budget with the deadline set to the absolute
    /// instant `deadline`.
    #[must_use]
    pub fn deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns this budget with `token` attached; the budget interrupts
    /// once any clone of the token is cancelled.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Wall-clock time since this budget was created.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether any trigger would interrupt right now, without recording
    /// a fail-point call. Used by coordinators (e.g. the sweep runner)
    /// that poll for cancellation outside any solve.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The per-iteration-batch poll: returns `Ok(())` to continue, or
    /// [`LinalgError::Interrupted`] — tagged with `method` and carrying
    /// `iterations`, `residual` and the elapsed time — when the budget
    /// is exhausted, the attached token is cancelled, or the
    /// `solver.cancel` fail point fires.
    ///
    /// The `solver.slow_iter` fail point stalls the check by 1 ms
    /// before deciding, letting chaos and deadline tests make any solve
    /// deliberately slow without touching the numerics.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Interrupted`] when interrupted, as above.
    pub fn check(&self, method: &'static str, iterations: usize, residual: f64) -> Result<()> {
        if slb_fault::fires("solver.slow_iter") {
            std::thread::sleep(Duration::from_millis(1));
        }
        let interrupted = self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || slb_fault::fires("solver.cancel")
            || self.deadline.is_some_and(|d| Instant::now() >= d);
        if interrupted {
            return Err(LinalgError::Interrupted {
                method,
                iterations,
                residual,
                elapsed: self.started.elapsed(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let b = Budget::unlimited();
        for it in 0..1000 {
            b.check("test_loop", it, 1.0).unwrap();
        }
        assert!(!b.exhausted());
    }

    #[test]
    fn cancel_token_interrupts_with_context() {
        let token = CancelToken::new();
        let b = Budget::unlimited().cancel_token(token.clone());
        b.check("test_loop", 3, 0.5).unwrap();
        token.cancel();
        assert!(b.exhausted());
        match b.check("test_loop", 7, 0.25) {
            Err(LinalgError::Interrupted {
                method,
                iterations,
                residual,
                ..
            }) => {
                assert_eq!(method, "test_loop");
                assert_eq!(iterations, 7);
                assert!((residual - 0.25).abs() < 1e-15);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn deadline_in_the_past_interrupts() {
        let b = Budget::with_deadline(Duration::ZERO);
        // A zero-length deadline has already passed by the first check.
        assert!(b.exhausted());
        assert!(matches!(
            b.check("test_loop", 0, f64::NAN),
            Err(LinalgError::Interrupted { .. })
        ));
        let roomy = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!roomy.exhausted());
        roomy.check("test_loop", 0, 0.0).unwrap();
    }

    #[test]
    fn clones_share_the_cancel_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert_eq!(token, clone);
        assert_ne!(token, CancelToken::new());
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn equality_ignores_creation_time() {
        let a = Budget::unlimited();
        std::thread::sleep(Duration::from_millis(2));
        let b = Budget::unlimited();
        assert_eq!(a, b);
        let t = CancelToken::new();
        assert_eq!(
            Budget::unlimited().cancel_token(t.clone()),
            Budget::unlimited().cancel_token(t)
        );
    }
}
