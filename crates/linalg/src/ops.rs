//! Arithmetic on [`Matrix`]: the in-place kernel, checked allocating
//! methods, and operator overloads.
//!
//! Three layers, from hot to convenient:
//!
//! 1. **In-place kernel** — [`Matrix::mul_into`], [`Matrix::mul_acc_into`],
//!    `+=`/`-=` ([`AddAssign`]/[`SubAssign`]), [`Matrix::axpy`],
//!    [`Matrix::scale_in_place`], [`Matrix::add_assign_scaled_identity`].
//!    These write into caller-provided storage and perform **zero heap
//!    allocation**; the QBD iteration loops run entirely on this layer
//!    (together with a [`crate::Workspace`] of scratch matrices).
//! 2. **Checked methods** (`mat_mul`, `add`, …) returning a [`Result`],
//!    which allocate their output and delegate to the kernel.
//! 3. **`std::ops` overloads** — thin panicking wrappers over layer 2 that
//!    keep numerical code readable where shapes are known by construction.
//!
//! The layers evaluate identical floating-point operations in identical
//! order, so results agree bit for bit (pinned by
//! `tests/inplace_equiv.rs`).

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::{LinalgError, Matrix, Result};

impl Matrix {
    /// Matrix product `out = self · rhs` into caller-provided storage —
    /// the allocation-free core every multiply in this crate reduces to.
    ///
    /// Uses the ikj loop order so the inner loop streams over contiguous
    /// rows of `rhs` and `out`, which the compiler auto-vectorizes; this
    /// is enough for the block sizes in this project (≤ a few thousand).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()` or `out` has the wrong shape.
    pub fn mul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        self.check_mul_shapes(rhs, out, "mul_into")?;
        out.as_mut_slice().fill(0.0);
        self.mul_acc_unchecked(rhs, out);
        Ok(())
    }

    /// Accumulating product `out += self · rhs` (a `β = 1` GEMM), in
    /// place. Lets expressions like `A2 + A0·G²` evaluate without a
    /// temporary for the product.
    ///
    /// # Errors
    ///
    /// As [`Matrix::mul_into`].
    pub fn mul_acc_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        self.check_mul_shapes(rhs, out, "mul_acc_into")?;
        self.mul_acc_unchecked(rhs, out);
        Ok(())
    }

    fn check_mul_shapes(&self, rhs: &Matrix, out: &Matrix, op: &'static str) -> Result<()> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.rows(), rhs.cols()) {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: (self.rows(), rhs.cols()),
                rhs: out.shape(),
            });
        }
        Ok(())
    }

    /// The shared ikj accumulation loop; shapes already validated.
    ///
    /// Rows of `self`/`out` are processed four at a time so each streamed
    /// row of `rhs` feeds four accumulator rows (register blocking —
    /// quarters the `rhs` memory traffic). Each `out[i][j]` accumulates
    /// its products in ascending-`p` order and zero coefficients are
    /// skipped per lane (never multiplied against `rhs`, exactly like the
    /// plain loop's `a == 0.0` skip), so the result is bit-identical to
    /// the plain triple loop even for non-finite `rhs` entries.
    fn mul_acc_unchecked(&self, rhs: &Matrix, out: &mut Matrix) {
        let n = self.rows();
        let w = out.cols();
        let mut i = 0;
        while i + 3 < n {
            let (head, tail) = out.as_mut_slice().split_at_mut((i + 2) * w);
            let (orow0, orow1) = head[i * w..].split_at_mut(w);
            let (orow2, orow3) = tail[..2 * w].split_at_mut(w);
            let k = self.cols();
            let arows = &self.as_slice()[i * k..(i + 4) * k];
            for (p, rrow) in rhs.rows_iter().enumerate() {
                let (a0, a1, a2, a3) = (arows[p], arows[k + p], arows[2 * k + p], arows[3 * k + p]);
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    // All four lanes live: the blocked fast path.
                    for ((((o0, o1), o2), o3), &r) in orow0
                        .iter_mut()
                        .zip(orow1.iter_mut())
                        .zip(orow2.iter_mut())
                        .zip(orow3.iter_mut())
                        .zip(rrow)
                    {
                        *o0 += a0 * r;
                        *o1 += a1 * r;
                        *o2 += a2 * r;
                        *o3 += a3 * r;
                    }
                } else {
                    // Mixed lanes: accumulate only the live ones, so a
                    // zero coefficient never touches rhs (0·inf would
                    // otherwise poison an untouched output row).
                    for (a, orow) in [
                        (a0, &mut *orow0),
                        (a1, &mut *orow1),
                        (a2, &mut *orow2),
                        (a3, &mut *orow3),
                    ] {
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &r) in orow.iter_mut().zip(rrow) {
                            *o += a * r;
                        }
                    }
                }
            }
            i += 4;
        }
        while i < n {
            let orow = out.row_mut(i);
            for (&a, rrow) in self.row(i).iter().zip(rhs.rows_iter()) {
                if a == 0.0 {
                    continue;
                }
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
            i += 1;
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// Allocates the result and delegates to [`Matrix::mul_into`]; use the
    /// in-place form directly when a scratch matrix is available.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn mat_mul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "mat_mul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows(), rhs.cols());
        self.mul_acc_unchecked(rhs, &mut out);
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.mat_vec_into(x, &mut out);
        out
    }

    /// `out = self · x` into a caller-provided buffer — the
    /// allocation-free sibling of [`Matrix::mat_vec`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mat_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.cols(),
            "mat_vec: vector length {} does not match {} columns",
            x.len(),
            self.cols()
        );
        assert_eq!(
            out.len(),
            self.rows(),
            "mat_vec: output length {} does not match {} rows",
            out.len(),
            self.rows()
        );
        for (o, row) in out.iter_mut().zip(self.rows_iter()) {
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        }
    }

    /// Row-vector–matrix product `x · self` (the natural operation on
    /// stationary probability vectors).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vec_mat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows(),
            "vec_mat: vector length {} does not match {} rows",
            x.len(),
            self.rows()
        );
        let mut out = vec![0.0; self.cols()];
        self.vec_mat_into(x, &mut out);
        out
    }

    /// `out = x · self` into a caller-provided buffer — the
    /// allocation-free sibling of [`Matrix::vec_mat`], used by the
    /// geometric-tail iteration `π_{q+1} = π_q·R`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()` or `out.len() != self.cols()`.
    pub fn vec_mat_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.rows(),
            "vec_mat: vector length {} does not match {} rows",
            x.len(),
            self.rows()
        );
        assert_eq!(
            out.len(),
            self.cols(),
            "vec_mat: output length {} does not match {} columns",
            out.len(),
            self.cols()
        );
        out.fill(0.0);
        for (row, &xv) in self.rows_iter().zip(x) {
            if xv == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row) {
                *o += xv * a;
            }
        }
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }

    /// Multiplies every entry by `s`, in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in self.as_mut_slice() {
            *v *= s;
        }
    }

    /// `self += alpha · x` (the matrix AXPY), in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, x: &Matrix) -> Result<()> {
        if self.shape() != x.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        for (s, &v) in self.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *s += alpha * v;
        }
        Ok(())
    }

    /// `self += s·I`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn add_assign_scaled_identity(&mut self, s: f64) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        for i in 0..self.rows() {
            self[(i, i)] += s;
        }
        Ok(())
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// The result has shape `(r_a·r_b) × (c_a·c_b)` with block `(i, j)`
    /// equal to `self[(i, j)]·rhs`. This is the workhorse of
    /// Markov-modulated block assembly: the generator of two independent
    /// phase processes is `A ⊗ I + I ⊗ B`.
    ///
    /// # Example
    ///
    /// ```
    /// use slb_linalg::Matrix;
    ///
    /// # fn main() -> Result<(), slb_linalg::LinalgError> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0]])?;
    /// let b = Matrix::from_rows(&[&[3.0], &[4.0]])?;
    /// let k = a.kron(&b);
    /// assert_eq!(k.shape(), (2, 2));
    /// assert_eq!(k[(1, 1)], 2.0 * 4.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let (ra, ca) = self.shape();
        let (rb, cb) = rhs.shape();
        let mut out = Matrix::zeros(ra * rb, ca * cb);
        for i in 0..ra {
            for j in 0..ca {
                let v = self[(i, j)];
                if v == 0.0 {
                    continue;
                }
                for k in 0..rb {
                    for l in 0..cb {
                        out[(i * rb + k, j * cb + l)] = v * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// `self + s·I`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn add_scaled_identity(&self, s: f64) -> Result<Matrix> {
        let mut out = self.clone();
        out.add_assign_scaled_identity(s)?;
        Ok(out)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o = f(*o, b);
        }
        Ok(out)
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// Element-wise `self += rhs`, in place (no allocation).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] with `alpha = 1` for
    /// a checked version.
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix += shape mismatch");
        for (s, &v) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *s += v;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    /// Element-wise `self -= rhs`, in place (no allocation).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::axpy`] with `alpha = -1`
    /// for a checked version.
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix -= shape mismatch");
        for (s, &v) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *s -= v;
        }
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::add`] for a checked version.
    fn add(self, rhs: &Matrix) -> Matrix {
        Matrix::add(self, rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::sub`] for a checked version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        Matrix::sub(self, rhs).expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::mat_mul`] for a checked
    /// version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mat_mul(rhs).expect("matrix product shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn zero_lhs_rows_never_touch_rhs() {
        // A zero coefficient must be skipped, not multiplied: 0·inf would
        // poison an output row that the plain triple loop leaves at zero.
        // Exercises both the 4-row blocked path (n = 5 puts rows 0..4 in
        // one block) and the remainder row.
        let n = 5;
        let mut a = Matrix::from_fn(n, n, |r, c| (r * n + c) as f64 + 1.0);
        for c in 0..n {
            a[(1, c)] = 0.0; // zero row inside the 4-row block
            a[(4, c)] = 0.0; // zero remainder row
        }
        let mut b = Matrix::from_fn(n, n, |r, c| (r + c) as f64);
        b[(2, 3)] = f64::INFINITY;
        b[(3, 1)] = f64::NAN;
        let prod = a.mat_mul(&b).unwrap();
        for c in 0..n {
            assert_eq!(prod[(1, c)], 0.0, "blocked zero row leaked at col {c}");
            assert_eq!(prod[(4, c)], 0.0, "remainder zero row leaked at col {c}");
        }
    }

    #[test]
    fn kron_shapes_and_entries() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[0.0, 5.0], &[6.0, 7.0]]);
        let k = a.kron(&b);
        assert_eq!(k.shape(), (4, 4));
        // Block (0,1) = 2·B.
        assert_eq!(k[(0, 2)], 0.0);
        assert_eq!(k[(0, 3)], 10.0);
        assert_eq!(k[(1, 2)], 12.0);
        assert_eq!(k[(1, 3)], 14.0);
        // Block (1,0) = 3·B.
        assert_eq!(k[(2, 1)], 15.0);
        assert_eq!(k[(3, 0)], 18.0);
    }

    #[test]
    fn kron_with_identity_is_block_diagonal() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let eye = Matrix::identity(3);
        let left = eye.kron(&a); // diag(A, A, A)
        assert_eq!(left.shape(), (6, 6));
        for blk in 0..3 {
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(left[(blk * 2 + i, blk * 2 + j)], a[(i, j)]);
                }
            }
        }
        // Off-diagonal blocks vanish.
        assert_eq!(left[(0, 2)], 0.0);
        assert_eq!(left[(4, 1)], 0.0);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD).
        let a = m(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let b = m(&[&[2.0, 0.0], &[1.0, 1.0]]);
        let c = m(&[&[1.0, 1.0], &[1.0, 0.0]]);
        let d = m(&[&[0.0, 1.0], &[2.0, 1.0]]);
        let lhs = a.kron(&b).mat_mul(&c.kron(&d)).unwrap();
        let rhs = a.mat_mul(&c).unwrap().kron(&b.mat_mul(&d).unwrap());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_vector_shapes() {
        // Row ⊗ row and column ⊗ column keep vector-ness.
        let row = m(&[&[1.0, 2.0, 3.0]]);
        let col = m(&[&[1.0], &[4.0]]);
        assert_eq!(row.kron(&row).shape(), (1, 9));
        assert_eq!(col.kron(&col).shape(), (4, 1));
    }
}
