//! Arithmetic on [`Matrix`]: checked methods plus operator overloads.
//!
//! The checked methods (`mat_mul`, `add`, …) return a [`Result`] and are the
//! primary API; the `std::ops` overloads are thin panicking wrappers that
//! make numerical code readable in contexts where the shapes are known by
//! construction (inside the QBD solver every block is `m × m`).

use std::ops::{Add, Mul, Neg, Sub};

use crate::{LinalgError, Matrix, Result};

impl Matrix {
    /// Matrix product `self · rhs`.
    ///
    /// Uses the ikj loop order so the inner loop streams over contiguous
    /// rows, which is enough for the block sizes in this project (≤ a few
    /// thousand).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn mat_mul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "mat_mul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (n, k, m) = (self.rows(), self.cols(), rhs.cols());
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for p in 0..k {
                let a = self[(i, p)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(p);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols(),
            "mat_vec: vector length {} does not match {} columns",
            x.len(),
            self.cols()
        );
        (0..self.rows())
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
            .collect()
    }

    /// Row-vector–matrix product `x · self` (the natural operation on
    /// stationary probability vectors).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vec_mat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows(),
            "vec_mat: vector length {} does not match {} rows",
            x.len(),
            self.rows()
        );
        let mut out = vec![0.0; self.cols()];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += xv * a;
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v *= s;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// The result has shape `(r_a·r_b) × (c_a·c_b)` with block `(i, j)`
    /// equal to `self[(i, j)]·rhs`. This is the workhorse of
    /// Markov-modulated block assembly: the generator of two independent
    /// phase processes is `A ⊗ I + I ⊗ B`.
    ///
    /// # Example
    ///
    /// ```
    /// use slb_linalg::Matrix;
    ///
    /// # fn main() -> Result<(), slb_linalg::LinalgError> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0]])?;
    /// let b = Matrix::from_rows(&[&[3.0], &[4.0]])?;
    /// let k = a.kron(&b);
    /// assert_eq!(k.shape(), (2, 2));
    /// assert_eq!(k[(1, 1)], 2.0 * 4.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let (ra, ca) = self.shape();
        let (rb, cb) = rhs.shape();
        let mut out = Matrix::zeros(ra * rb, ca * cb);
        for i in 0..ra {
            for j in 0..ca {
                let v = self[(i, j)];
                if v == 0.0 {
                    continue;
                }
                for k in 0..rb {
                    for l in 0..cb {
                        out[(i * rb + k, j * cb + l)] = v * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// `self + s·I`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn add_scaled_identity(&self, s: f64) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows() {
            out[(i, i)] += s;
        }
        Ok(out)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o = f(*o, b);
        }
        Ok(out)
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::add`] for a checked version.
    fn add(self, rhs: &Matrix) -> Matrix {
        Matrix::add(self, rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::sub`] for a checked version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        Matrix::sub(self, rhs).expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::mat_mul`] for a checked
    /// version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mat_mul(rhs).expect("matrix product shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn kron_shapes_and_entries() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[0.0, 5.0], &[6.0, 7.0]]);
        let k = a.kron(&b);
        assert_eq!(k.shape(), (4, 4));
        // Block (0,1) = 2·B.
        assert_eq!(k[(0, 2)], 0.0);
        assert_eq!(k[(0, 3)], 10.0);
        assert_eq!(k[(1, 2)], 12.0);
        assert_eq!(k[(1, 3)], 14.0);
        // Block (1,0) = 3·B.
        assert_eq!(k[(2, 1)], 15.0);
        assert_eq!(k[(3, 0)], 18.0);
    }

    #[test]
    fn kron_with_identity_is_block_diagonal() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let eye = Matrix::identity(3);
        let left = eye.kron(&a); // diag(A, A, A)
        assert_eq!(left.shape(), (6, 6));
        for blk in 0..3 {
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(left[(blk * 2 + i, blk * 2 + j)], a[(i, j)]);
                }
            }
        }
        // Off-diagonal blocks vanish.
        assert_eq!(left[(0, 2)], 0.0);
        assert_eq!(left[(4, 1)], 0.0);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD).
        let a = m(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let b = m(&[&[2.0, 0.0], &[1.0, 1.0]]);
        let c = m(&[&[1.0, 1.0], &[1.0, 0.0]]);
        let d = m(&[&[0.0, 1.0], &[2.0, 1.0]]);
        let lhs = a.kron(&b).mat_mul(&c.kron(&d)).unwrap();
        let rhs = a.mat_mul(&c).unwrap().kron(&b.mat_mul(&d).unwrap());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_vector_shapes() {
        // Row ⊗ row and column ⊗ column keep vector-ness.
        let row = m(&[&[1.0, 2.0, 3.0]]);
        let col = m(&[&[1.0], &[4.0]]);
        assert_eq!(row.kron(&row).shape(), (1, 9));
        assert_eq!(col.kron(&col).shape(), (4, 1));
    }
}
