#![allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm

//! LU decomposition with partial pivoting, and the solve/inverse/determinant
//! operations built on it.

use crate::{LinalgError, Matrix, Result};

/// Pivot magnitudes below this are treated as exact zeros (singularity).
///
/// The QBD blocks are diagonally dominant generators with entries of order
/// one, so a pivot this small only ever arises from genuinely singular
/// systems (e.g. an unstable upper-bound model).
const PIVOT_TOL: f64 = 1e-300;

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// Computed once via [`Lu::new`] and reused for repeated solves against the
/// same matrix — exactly the pattern of the logarithmic-reduction iteration,
/// which solves with the same `(I − U)` against two right-hand sides.
///
/// # Example
///
/// ```
/// use slb_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), slb_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::new(&a)?;
/// let x = lu.solve_vec(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper, incl. diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for the determinant).
    perm_sign: f64,
}

/// Gaussian elimination with partial pivoting, in place over `lu`;
/// returns the permutation sign. Works on whole-row slices so the update
/// `row_r ← row_r − factor·row_k` streams over contiguous memory (and
/// auto-vectorizes) instead of paying an index computation per entry.
fn factorize_in_place(lu: &mut Matrix, perm: &mut Vec<usize>) -> Result<f64> {
    let n = lu.rows();
    perm.clear();
    perm.extend(0..n);
    let mut perm_sign = 1.0;

    for k in 0..n {
        // Partial pivoting: bring the largest |entry| of column k into
        // the pivot position.
        let mut p = k;
        let mut pmax = lu[(k, k)].abs();
        for r in (k + 1)..n {
            let v = lu[(r, k)].abs();
            if v > pmax {
                pmax = v;
                p = r;
            }
        }
        if pmax < PIVOT_TOL || !pmax.is_finite() {
            return Err(LinalgError::Singular {
                column: k,
                pivot: pmax,
            });
        }
        if p != k {
            perm.swap(p, k);
            perm_sign = -perm_sign;
            let (row_k, row_p) = lu.rows_mut_pair(k, p);
            row_k.swap_with_slice(row_p);
        }
        let pivot = lu[(k, k)];
        for r in (k + 1)..n {
            let (row_k, row_r) = lu.rows_mut_pair(k, r);
            let factor = row_r[k] / pivot;
            row_r[k] = factor;
            if factor == 0.0 {
                continue;
            }
            for (x, &ukc) in row_r[k + 1..].iter_mut().zip(&row_k[k + 1..]) {
                *x -= factor * ukc;
            }
        }
    }
    Ok(perm_sign)
}

impl Lu {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if elimination hits a (near-)zero pivot.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let mut lu = a.clone();
        let mut perm = Vec::with_capacity(a.rows());
        let perm_sign = factorize_in_place(&mut lu, &mut perm)?;
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Refactorizes `a` **reusing this factorization's storage** — no heap
    /// allocation. This is the per-iteration path of the QBD reductions,
    /// which factor a same-shaped `(I − U)` every step.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not `n × n`.
    /// * [`LinalgError::Singular`] if elimination hits a (near-)zero
    ///   pivot. After an error the factorization holds partially
    ///   eliminated data and **must not be used to solve**; refactor
    ///   successfully before the next solve.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        if a.shape() != self.lu.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_refactor",
                lhs: self.lu.shape(),
                rhs: a.shape(),
            });
        }
        self.lu.copy_from(a);
        self.perm_sign = factorize_in_place(&mut self.lu, &mut self.perm)?;
        Ok(())
    }

    /// Dimension of the factorized matrix.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_vec",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution with the permuted right-hand side.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for all right-hand sides at once.
    ///
    /// Allocates the result and delegates to [`Lu::solve_mat_into`]; use
    /// the in-place form directly when a scratch matrix is available.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B.rows() != n`.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(b.rows(), b.cols());
        self.solve_mat_into(b, &mut out)?;
        Ok(out)
    }

    /// Solves `A·X = B` into caller-provided storage, with **zero heap
    /// allocation**.
    ///
    /// Substitution runs over whole rows of `X` (all right-hand sides
    /// simultaneously), so the inner loops stream over contiguous memory
    /// instead of walking a strided column per right-hand side — both an
    /// allocation and a locality win over the classic column-by-column
    /// formulation. `b` and `out` may not alias (distinct `&`/`&mut`
    /// borrows enforce this).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B.rows() != n` or
    /// `out` does not have `B`'s shape.
    pub fn solve_mat_into(&self, b: &Matrix, out: &mut Matrix) -> Result<()> {
        let n = self.n();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_mat",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        if out.shape() != b.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_mat_into",
                lhs: b.shape(),
                rhs: out.shape(),
            });
        }
        // Permuted copy of the right-hand sides.
        for (i, &p) in self.perm.iter().enumerate() {
            out.row_mut(i).copy_from_slice(b.row(p));
        }
        let w = b.cols();
        // Forward substitution with unit lower L. The eliminated rows j
        // are folded in two at a time (same per-element order, half the
        // passes over row i).
        for i in 1..n {
            let (head, tail) = out.as_mut_slice().split_at_mut(i * w);
            let row_i = &mut tail[..w];
            let lrow = self.lu.row(i);
            let mut j = 0;
            while j + 1 < i {
                let (l0, l1) = (lrow[j], lrow[j + 1]);
                if l0 != 0.0 || l1 != 0.0 {
                    let y0 = &head[j * w..(j + 1) * w];
                    let y1 = &head[(j + 1) * w..(j + 2) * w];
                    for ((x, &a), &b) in row_i.iter_mut().zip(y0).zip(y1) {
                        *x -= l0 * a;
                        *x -= l1 * b;
                    }
                }
                j += 2;
            }
            if j < i {
                let l0 = lrow[j];
                if l0 != 0.0 {
                    let y0 = &head[j * w..(j + 1) * w];
                    for (x, &a) in row_i.iter_mut().zip(y0) {
                        *x -= l0 * a;
                    }
                }
            }
        }
        // Back substitution with U, with the same two-row folding.
        for i in (0..n).rev() {
            let (head, tail) = out.as_mut_slice().split_at_mut((i + 1) * w);
            let row_i = &mut head[i * w..];
            let urow = self.lu.row(i);
            let mut j = i + 1;
            while j + 1 < n {
                let (u0, u1) = (urow[j], urow[j + 1]);
                if u0 != 0.0 || u1 != 0.0 {
                    let off = (j - i - 1) * w;
                    let y0 = &tail[off..off + w];
                    let y1 = &tail[off + w..off + 2 * w];
                    for ((x, &a), &b) in row_i.iter_mut().zip(y0).zip(y1) {
                        *x -= u0 * a;
                        *x -= u1 * b;
                    }
                }
                j += 2;
            }
            if j < n {
                let u0 = urow[j];
                if u0 != 0.0 {
                    let off = (j - i - 1) * w;
                    let y0 = &tail[off..off + w];
                    for (x, &a) in row_i.iter_mut().zip(y0) {
                        *x -= u0 * a;
                    }
                }
            }
            let d = urow[i];
            for x in row_i.iter_mut() {
                *x /= d;
            }
        }
        Ok(())
    }

    /// Solves the transposed system `xᵀ·A = bᵀ` (i.e. `Aᵀ·x = b`), the
    /// natural orientation for stationary-vector equations `π·Q = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_transposed_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_transposed",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // PA = LU  =>  Aᵀ Pᵀ = Uᵀ Lᵀ  =>  Aᵀ x = b is solved via
        // Uᵀ y = b (forward), Lᵀ z = y (backward), x = Pᵀ z.
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu[(j, i)] * y[j];
            }
            y[i] = s / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu[(j, i)] * y[j];
            }
            y[i] = s;
        }
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        Ok(x)
    }

    /// The determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.n() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// The inverse of the factorized matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve failures (cannot occur once factorization
    /// succeeded, but the signature stays fallible for uniformity).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_mat(&Matrix::identity(self.n()))
    }
}

impl Matrix {
    /// Solves `self · x = b`.
    ///
    /// Convenience wrapper that factorizes on the fly; use [`Lu`] directly
    /// to amortize the factorization over several right-hand sides.
    ///
    /// # Errors
    ///
    /// See [`Lu::new`] and [`Lu::solve_vec`].
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        Lu::new(self)?.solve_vec(b)
    }

    /// Solves `self · X = B`.
    ///
    /// # Errors
    ///
    /// See [`Lu::new`] and [`Lu::solve_mat`].
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix> {
        Lu::new(self)?.solve_mat(b)
    }

    /// Matrix inverse.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for singular matrices and
    /// [`LinalgError::NotSquare`] for rectangular ones.
    pub fn inverse(&self) -> Result<Matrix> {
        Lu::new(self)?.inverse()
    }

    /// Determinant via LU.
    ///
    /// Returns `0.0` for matrices that are singular to working precision
    /// (rather than erroring, since a zero determinant is a legitimate
    /// query result).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn det(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        match Lu::new(self) {
            Ok(lu) => Ok(lu.det()),
            Err(LinalgError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn solve_2x2() {
        let a = mat(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve_vec(&[3.0, 5.0]).unwrap();
        let r = a.mat_vec(&x);
        assert!((r[0] - 3.0).abs() < 1e-12);
        assert!((r[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position: naive elimination would fail.
        let a = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve_vec(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.solve_vec(&[1.0, 1.0]) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
        assert_eq!(a.det().unwrap(), 0.0);
    }

    #[test]
    fn inverse_matches_identity() {
        let a = mat(&[&[4.0, 7.0, 2.0], &[3.0, 5.0, 1.0], &[8.0, 1.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn det_known_values() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.det().unwrap() + 2.0).abs() < 1e-12);
        assert!((Matrix::identity(5).det().unwrap() - 1.0).abs() < 1e-15);
        // Permutation matrix with negative sign.
        let p = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((p.det().unwrap() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn transposed_solve() {
        let a = mat(&[&[3.0, 1.0, 0.5], &[0.2, 2.0, 0.1], &[0.3, 0.4, 4.0]]);
        let lu = Lu::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve_transposed_vec(&b).unwrap();
        // Check x·A = b (row-vector form).
        let r = a.vec_mat(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12, "residual {r:?}");
        }
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = mat(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = mat(&[&[2.0, 4.0], &[8.0, 12.0]]);
        let x = a.solve_mat(&b).unwrap();
        assert!(x.approx_eq(&mat(&[&[1.0, 2.0], &[2.0, 3.0]]), 1e-12));
    }

    #[test]
    fn not_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::new(&a),
            Err(LinalgError::NotSquare { shape: (2, 3) })
        ));
        assert!(a.det().is_err());
    }

    #[test]
    fn det_dimension_error_reported() {
        // Determinant reports NotSquare rather than silently returning 0.
        let a = Matrix::zeros(1, 2);
        assert!(matches!(a.det(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn refactor_reuses_storage_and_matches_fresh() {
        let a = mat(&[&[4.0, 7.0, 2.0], &[3.0, 5.0, 1.0], &[8.0, 1.0, 6.0]]);
        let b = mat(&[&[0.0, 1.0, 0.5], &[2.0, 0.3, 0.1], &[0.4, 5.0, 9.0]]);
        let mut lu = Lu::new(&a).unwrap();
        lu.refactor(&b).unwrap();
        let fresh = Lu::new(&b).unwrap();
        // Same factorization bit for bit.
        assert_eq!(lu.det(), fresh.det());
        let rhs = [1.0, 2.0, 3.0];
        assert_eq!(lu.solve_vec(&rhs).unwrap(), fresh.solve_vec(&rhs).unwrap());
        // Wrong shape rejected; singular input reported.
        assert!(lu.refactor(&Matrix::zeros(2, 2)).is_err());
        assert!(matches!(
            lu.refactor(&mat(&[
                &[1.0, 2.0, 3.0],
                &[2.0, 4.0, 6.0],
                &[0.5, 1.0, 1.5]
            ])),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn solve_mat_into_matches_column_solves() {
        let a = mat(&[&[3.0, 1.0, 0.5], &[0.2, 2.0, 0.1], &[0.3, 0.4, 4.0]]);
        let b = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64 * 0.37 - 1.0);
        let lu = Lu::new(&a).unwrap();
        let mut out = Matrix::zeros(3, 5);
        lu.solve_mat_into(&b, &mut out).unwrap();
        for c in 0..5 {
            let x = lu.solve_vec(&b.col(c)).unwrap();
            for r in 0..3 {
                assert_eq!(out[(r, c)], x[r], "entry ({r}, {c})");
            }
        }
        // Shape mismatches rejected.
        let mut bad = Matrix::zeros(3, 4);
        assert!(lu.solve_mat_into(&b, &mut bad).is_err());
        assert!(lu.solve_mat_into(&Matrix::zeros(2, 2), &mut bad).is_err());
    }

    #[test]
    fn hilbert_4_accuracy() {
        // Hilbert matrices are classically ill-conditioned; n=4 is still
        // comfortably solvable with partial pivoting.
        let h = Matrix::from_fn(4, 4, |r, c| 1.0 / ((r + c + 1) as f64));
        let ones = vec![1.0; 4];
        let b = h.mat_vec(&ones);
        let x = h.solve_vec(&b).unwrap();
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-9, "x = {x:?}");
        }
    }
}
