//! Sparse (lumped-state) QBD solver path.
//!
//! The dense [`QbdBlocks`](crate::QbdBlocks) container stores each block as
//! a full `m × m` matrix and funnels every solve through LU — perfect up to
//! a few thousand states, hopeless at the `C(N+T−1, T)` block sizes the
//! occupancy-lumped SQ(d) models reach for `N` in the hundreds (`m` is
//! 32 896 at `N = 256, T = 2` and 131 328 at `N = 512`). This module is
//! the large-`N` path:
//!
//! * [`SparseQbdBlocks`] — the same six validated blocks, held as
//!   [`CsrMatrix`] and never densified;
//! * [`SparseQbdBlocks::solve_scalar_tail`] (in `stationary`) — the
//!   Theorem 2/3 scalar-tail boundary solve, via sparse Gauss–Seidel
//!   instead of LU;
//! * [`SparseQbdBlocks::solve_decay_tail`] — a logarithmic-reduction-style
//!   truncated solve for models without a scalar tail: the resolved tail
//!   depth **doubles** per outer round (like logarithmic reduction's
//!   doubling of the first-passage horizon) until the top level's mass
//!   falls below a tolerance, all on CSR blocks;
//! * [`decay_rate_sparse`](crate::decay_rate_sparse) (in `logred`) — the
//!   decay-rate-only fast path: `sp(R)` as the root of the Perron
//!   eigenvalue of `A(z) = A0 + z·A1 + z²·A2` without ever forming `R`.
//!
//! Every entry point mirrors a dense counterpart and is pinned to it by
//! equivalence tests at sizes where both run.

use slb_linalg::{null_vector_gs_budgeted, Budget, CooBuilder, CsrMatrix};

use crate::{QbdBlocks, QbdError, Result};

/// Row sums of a generator must vanish to this absolute tolerance.
const ROW_SUM_TOL: f64 = 1e-9;

/// The six blocks of a level-independent QBD generator in compressed
/// sparse row form — the lumped-state twin of [`QbdBlocks`].
///
/// Invariants validated at construction match the dense container:
/// shape consistency, nonnegative off-diagonal entries (`R00`/`A1`
/// diagonals may be negative), and vanishing row sums of each full
/// generator row (`R00·e + R01·e = 0`, `R10·e + A1·e + A0·e = 0`,
/// `A2·e + A1·e + A0·e = 0`). Validation is `O(nnz)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseQbdBlocks {
    r00: CsrMatrix,
    r01: CsrMatrix,
    r10: CsrMatrix,
    a0: CsrMatrix,
    a1: CsrMatrix,
    a2: CsrMatrix,
}

/// Options for the sparse Gauss–Seidel solves on [`SparseQbdBlocks`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSolveOptions {
    /// Scaled residual target `‖π M‖∞ / (‖M‖∞ ‖π‖∞)` for Gauss–Seidel.
    pub gs_tol: f64,
    /// Sweep budget for one Gauss–Seidel solve.
    pub gs_max_sweeps: usize,
    /// Truncation target for [`SparseQbdBlocks::solve_decay_tail`]: the
    /// solve is accepted once the top retained level holds at most this
    /// much probability mass.
    pub tail_tol: f64,
    /// Levels retained by the first truncation round.
    pub initial_levels: usize,
    /// Hard cap on retained levels (the doubling stops here).
    pub max_levels: usize,
    /// Cooperative cancellation budget for the solve: deadline, cancel
    /// token and fail-point triggers, polled once per Gauss–Seidel
    /// sweep and once per truncation round. Defaults to
    /// [`Budget::unlimited`].
    pub budget: Budget,
}

impl Default for SparseSolveOptions {
    fn default() -> Self {
        SparseSolveOptions {
            gs_tol: 1e-12,
            gs_max_sweeps: 50_000,
            tail_tol: 1e-12,
            initial_levels: 4,
            max_levels: 4_096,
            budget: Budget::unlimited(),
        }
    }
}

impl SparseQbdBlocks {
    /// Builds and validates the sparse block container.
    ///
    /// # Errors
    ///
    /// [`QbdError::InvalidBlocks`] describing the first violated
    /// invariant.
    ///
    /// # Examples
    ///
    /// M/M/1 as the trivial one-phase QBD:
    ///
    /// ```
    /// use slb_linalg::CsrMatrix;
    /// use slb_qbd::SparseQbdBlocks;
    ///
    /// # fn main() -> Result<(), slb_qbd::QbdError> {
    /// let (lam, mu) = (0.6, 1.0);
    /// let one = |v: f64| CsrMatrix::from_triplets(1, 1, [(0, 0, v)]).unwrap();
    /// let blocks = SparseQbdBlocks::new(
    ///     one(-lam),       // R00
    ///     one(lam),        // R01
    ///     one(mu),         // R10
    ///     one(lam),        // A0
    ///     one(-(lam + mu)),// A1
    ///     one(mu),         // A2
    /// )?;
    /// assert_eq!(blocks.level_len(), 1);
    /// assert!(blocks.is_stable()?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(
        r00: CsrMatrix,
        r01: CsrMatrix,
        r10: CsrMatrix,
        a0: CsrMatrix,
        a1: CsrMatrix,
        a2: CsrMatrix,
    ) -> Result<Self> {
        let nb = r00.rows();
        let m = a1.rows();
        let shape_checks = [
            ("R00", r00.shape(), (nb, nb)),
            ("R01", r01.shape(), (nb, m)),
            ("R10", r10.shape(), (m, nb)),
            ("A0", a0.shape(), (m, m)),
            ("A1", a1.shape(), (m, m)),
            ("A2", a2.shape(), (m, m)),
        ];
        for (name, got, want) in shape_checks {
            if got != want {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("{name} has shape {got:?}, expected {want:?}"),
                });
            }
        }

        let off_diag_nonneg = |mat: &CsrMatrix, name: &str, diag_ok: bool| -> Result<()> {
            for r in 0..mat.rows() {
                for (c, v) in mat.row(r) {
                    if v < 0.0 && !(diag_ok && r == c) {
                        return Err(QbdError::InvalidBlocks {
                            reason: format!("{name} has negative off-diagonal {v} at ({r}, {c})"),
                        });
                    }
                }
            }
            Ok(())
        };
        off_diag_nonneg(&r00, "R00", true)?;
        off_diag_nonneg(&r01, "R01", false)?;
        off_diag_nonneg(&r10, "R10", false)?;
        off_diag_nonneg(&a0, "A0", false)?;
        off_diag_nonneg(&a1, "A1", true)?;
        off_diag_nonneg(&a2, "A2", false)?;

        let sums = |m: &CsrMatrix| m.row_sums();
        let (s00, s01) = (sums(&r00), sums(&r01));
        for r in 0..nb {
            let s = s00[r] + s01[r];
            if s.abs() > ROW_SUM_TOL {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("boundary row {r} sums to {s}, expected 0"),
                });
            }
        }
        let (s10, s1, s0, s2) = (sums(&r10), sums(&a1), sums(&a0), sums(&a2));
        for r in 0..m {
            let lvl0 = s10[r] + s1[r] + s0[r];
            if lvl0.abs() > ROW_SUM_TOL {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("level-0 row {r} sums to {lvl0}, expected 0"),
                });
            }
            let rep = s2[r] + s1[r] + s0[r];
            if rep.abs() > ROW_SUM_TOL {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("repeating row {r} sums to {rep}, expected 0"),
                });
            }
        }

        Ok(SparseQbdBlocks {
            r00,
            r01,
            r10,
            a0,
            a1,
            a2,
        })
    }

    /// Converts a validated dense container to sparse form (exact — no
    /// drop tolerance is applied).
    pub fn from_dense(dense: &QbdBlocks) -> Self {
        let csr = |m: &slb_linalg::Matrix| CsrMatrix::from_dense(m, 0.0);
        SparseQbdBlocks {
            r00: csr(dense.r00()),
            r01: csr(dense.r01()),
            r10: csr(dense.r10()),
            a0: csr(dense.a0()),
            a1: csr(dense.a1()),
            a2: csr(dense.a2()),
        }
    }

    /// Number of boundary states.
    pub fn boundary_len(&self) -> usize {
        self.r00.rows()
    }

    /// Number of states per repeating level.
    pub fn level_len(&self) -> usize {
        self.a1.rows()
    }

    /// Boundary-internal block `R00`.
    pub fn r00(&self) -> &CsrMatrix {
        &self.r00
    }

    /// Boundary → level-0 block `R01`.
    pub fn r01(&self) -> &CsrMatrix {
        &self.r01
    }

    /// Level-0 → boundary block `R10`.
    pub fn r10(&self) -> &CsrMatrix {
        &self.r10
    }

    /// Upward (level `q` → `q+1`) block `A0`.
    pub fn a0(&self) -> &CsrMatrix {
        &self.a0
    }

    /// Local (level `q` → `q`) block `A1`.
    pub fn a1(&self) -> &CsrMatrix {
        &self.a1
    }

    /// Downward (level `q` → `q−1`) block `A2`.
    pub fn a2(&self) -> &CsrMatrix {
        &self.a2
    }

    /// Stationary vector of the phase process `A = A0 + A1 + A2`, via
    /// sparse Gauss–Seidel (the dense container uses GTH here).
    ///
    /// # Errors
    ///
    /// [`QbdError::NoConvergence`] if the Gauss–Seidel iteration fails
    /// to converge (e.g. `A` is reducible).
    pub fn phase_stationary(&self) -> Result<Vec<f64>> {
        self.phase_stationary_budgeted(&Budget::unlimited())
    }

    /// [`SparseQbdBlocks::phase_stationary`] under a cooperative
    /// [`Budget`] — the phase chain is block-sized (`m` reaches six
    /// figures at production `N`), so its Gauss–Seidel solve must be
    /// interruptible too.
    ///
    /// # Errors
    ///
    /// As [`SparseQbdBlocks::phase_stationary`], plus
    /// [`QbdError::Interrupted`].
    pub fn phase_stationary_budgeted(&self, budget: &Budget) -> Result<Vec<f64>> {
        let m = self.level_len();
        if m == 1 {
            // A single phase has the trivial stationary vector (its
            // 1×1 phase generator is identically zero).
            return Ok(vec![1.0]);
        }
        let mut coo = CooBuilder::new(m, m);
        for blk in [&self.a0, &self.a1, &self.a2] {
            add_csr_block_transposed(&mut coo, 0, 0, blk, 1.0)?;
        }
        let sol = null_vector_gs_budgeted(&coo.build(), &vec![1.0; m], 1e-13, 100_000, budget)?;
        Ok(sol.x)
    }

    /// Mean drifts `(π A0 e, π A2 e)` of the level process under the phase
    /// stationary vector `π`.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseQbdBlocks::phase_stationary`] failures.
    pub fn drifts(&self) -> Result<(f64, f64)> {
        self.drifts_budgeted(&Budget::unlimited())
    }

    /// [`SparseQbdBlocks::drifts`] under a cooperative [`Budget`].
    ///
    /// # Errors
    ///
    /// As [`SparseQbdBlocks::drifts`], plus [`QbdError::Interrupted`].
    pub fn drifts_budgeted(&self, budget: &Budget) -> Result<(f64, f64)> {
        let pi = self.phase_stationary_budgeted(budget)?;
        let dot_rows = |m: &CsrMatrix| -> f64 {
            m.row_sums()
                .iter()
                .zip(&pi)
                .map(|(s, p)| s * p)
                .sum::<f64>()
        };
        Ok((dot_rows(&self.a0), dot_rows(&self.a2)))
    }

    /// Neuts' stability criterion: positive recurrence iff
    /// `π A0 e < π A2 e`.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseQbdBlocks::drifts`] failures.
    pub fn is_stable(&self) -> Result<bool> {
        let (up, down) = self.drifts()?;
        Ok(up < down)
    }

    /// Solves the QBD by truncating the level space and doubling the
    /// truncation depth until the retained tail is numerically complete —
    /// a logarithmic-reduction-style outer iteration (the resolved depth
    /// doubles per round, so `L*` levels cost `O(log L*)` rounds) that
    /// never leaves CSR form and never touches `G` or `R`.
    ///
    /// At each round the truncated generator (upward rates of the last
    /// level folded into its diagonal) is solved by sparse Gauss–Seidel;
    /// the round is accepted when the top level's probability mass drops
    /// below [`SparseSolveOptions::tail_tol`], which bounds both the
    /// discarded tail mass and the truncation bias of downstream
    /// expectations.
    ///
    /// This is the upper-bound path for models whose tail is genuinely
    /// matrix-geometric (no Theorem 2/3 scalar shortcut); use
    /// [`SparseQbdBlocks::solve_scalar_tail`] when a scalar decay is
    /// known.
    ///
    /// # Errors
    ///
    /// * [`QbdError::Unstable`] if Neuts' drift condition fails.
    /// * [`QbdError::NoConvergence`] if the cap on retained levels is hit
    ///   before the tail mass target, or a Gauss–Seidel solve stalls.
    /// * [`QbdError::Interrupted`] when [`SparseSolveOptions::budget`]
    ///   trips mid-solve.
    ///
    /// # Examples
    ///
    /// M/M/1 (λ = 0.6): level masses decay geometrically with ratio ρ.
    ///
    /// ```
    /// use slb_linalg::CsrMatrix;
    /// use slb_qbd::{SparseQbdBlocks, SparseSolveOptions};
    ///
    /// # fn main() -> Result<(), slb_qbd::QbdError> {
    /// let (lam, mu) = (0.6, 1.0);
    /// let one = |v: f64| CsrMatrix::from_triplets(1, 1, [(0, 0, v)]).unwrap();
    /// let blocks = SparseQbdBlocks::new(
    ///     one(-lam), one(lam), one(mu),
    ///     one(lam), one(-(lam + mu)), one(mu),
    /// )?;
    /// let sol = blocks.solve_decay_tail(&SparseSolveOptions::default())?;
    /// let ratio = sol.levels()[3][0] / sol.levels()[2][0];
    /// assert!((ratio - 0.6).abs() < 1e-9);
    /// assert!((sol.decay() - 0.6).abs() < 1e-6);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve_decay_tail(&self, opts: &SparseSolveOptions) -> Result<TruncatedStationary> {
        let (up, down) = self.drifts_budgeted(&opts.budget)?;
        if up >= down {
            return Err(QbdError::Unstable {
                up_drift: up,
                down_drift: down,
            });
        }
        let nb = self.boundary_len();
        let m = self.level_len();
        let mut levels = opts.initial_levels.max(2);
        loop {
            opts.budget
                .check("decay_tail_truncation", levels, f64::NAN)?;
            let k = nb + levels * m;
            let mt = self.truncated_balance_transposed(levels)?;
            let gs = null_vector_gs_budgeted(
                &mt,
                &vec![1.0; k],
                opts.gs_tol,
                opts.gs_max_sweeps,
                &opts.budget,
            )
            .map_err(QbdError::from)?;
            let top_mass: f64 = gs.x[nb + (levels - 1) * m..].iter().sum();
            if top_mass <= opts.tail_tol {
                let mut boundary = gs.x[..nb].to_vec();
                slb_linalg::vector::clamp_nonnegative(&mut boundary, 1e-8);
                let lvls: Vec<Vec<f64>> = (0..levels)
                    .map(|l| {
                        let mut v = gs.x[nb + l * m..nb + (l + 1) * m].to_vec();
                        slb_linalg::vector::clamp_nonnegative(&mut v, 1e-8);
                        v
                    })
                    .collect();
                let mass = |l: usize| -> f64 { lvls[l].iter().sum() };
                let (m_lo, m_hi) = (mass(levels - 2), mass(levels - 1));
                let decay = if m_lo > 0.0 {
                    (m_hi / m_lo).min(1.0)
                } else {
                    0.0
                };
                return Ok(TruncatedStationary {
                    boundary,
                    levels: lvls,
                    decay,
                    residual: gs.residual,
                    sweeps: gs.sweeps,
                });
            }
            if levels >= opts.max_levels {
                return Err(QbdError::NoConvergence {
                    method: "decay_tail_truncation",
                    iterations: levels,
                    residual: top_mass,
                });
            }
            levels = (levels * 2).min(opts.max_levels);
        }
    }

    /// Assembles the transpose of the truncated finite balance system
    /// (boundary + `levels` repeating levels, upward rates of the top
    /// level folded into its diagonal so the system stays a generator).
    pub(crate) fn truncated_balance_transposed(&self, levels: usize) -> Result<CsrMatrix> {
        assert!(levels >= 1, "need at least one repeating level");
        let nb = self.boundary_len();
        let m = self.level_len();
        let k = nb + levels * m;
        let mut coo = CooBuilder::new(k, k);
        add_csr_block_transposed(&mut coo, 0, 0, &self.r00, 1.0)?;
        add_csr_block_transposed(&mut coo, 0, nb, &self.r01, 1.0)?;
        add_csr_block_transposed(&mut coo, nb, 0, &self.r10, 1.0)?;
        for l in 0..levels {
            let row = nb + l * m;
            add_csr_block_transposed(&mut coo, row, row, &self.a1, 1.0)?;
            if l + 1 < levels {
                add_csr_block_transposed(&mut coo, row, row + m, &self.a0, 1.0)?;
            } else {
                // Fold A0 into the top diagonal: the lost upward rate
                // becomes a removed self-loop, keeping row sums at zero.
                for (r, excess) in self.a0.row_sums().iter().enumerate() {
                    coo.add(row + r, row + r, *excess)
                        .map_err(QbdError::Linalg)?;
                }
            }
            if l > 0 {
                add_csr_block_transposed(&mut coo, row, row - m, &self.a2, 1.0)?;
            }
        }
        Ok(coo.build())
    }
}

/// Adds `scale · B` at block position `(r0, c0)` of the **transposed**
/// system: entry `B(r, c)` lands at `(c0 + c, r0 + r)`.
pub(crate) fn add_csr_block_transposed(
    coo: &mut CooBuilder,
    r0: usize,
    c0: usize,
    block: &CsrMatrix,
    scale: f64,
) -> Result<()> {
    for r in 0..block.rows() {
        for (c, v) in block.row(r) {
            coo.add(c0 + c, r0 + r, scale * v)
                .map_err(QbdError::Linalg)?;
        }
    }
    Ok(())
}

/// Stationary distribution of a QBD solved by level truncation
/// ([`SparseQbdBlocks::solve_decay_tail`]): the boundary vector plus an
/// explicit vector per retained level. The levels beyond the last
/// retained one carry (by construction) less mass than the accepted
/// tail tolerance and are treated as empty.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedStationary {
    boundary: Vec<f64>,
    levels: Vec<Vec<f64>>,
    decay: f64,
    residual: f64,
    sweeps: usize,
}

impl TruncatedStationary {
    /// Stationary probabilities of the boundary states.
    pub fn boundary(&self) -> &[f64] {
        &self.boundary
    }

    /// Stationary probabilities per retained repeating level (level 0
    /// first).
    pub fn levels(&self) -> &[Vec<f64>] {
        &self.levels
    }

    /// Empirical per-level decay `Σπ_{L−1} / Σπ_{L−2}` of the last two
    /// retained levels — a cross-check against
    /// [`decay_rate_sparse`](crate::decay_rate_sparse) (only meaningful
    /// when those levels carry mass above round-off).
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Residual `‖π M‖∞` of the accepted truncated system.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Gauss–Seidel sweeps used by the accepted round.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Total retained probability mass (1 up to round-off).
    pub fn total_mass(&self) -> f64 {
        self.boundary.iter().sum::<f64>()
            + self
                .levels
                .iter()
                .map(|v| v.iter().sum::<f64>())
                .sum::<f64>()
    }

    /// Expectation of a cost that is `c_b(i)` on boundary state `i` and
    /// `c0(j) + q·growth(j)` on state `j` of repeating level `q` — the
    /// truncated analogue of
    /// [`QbdStationary::mean_linear_cost`](crate::QbdStationary::mean_linear_cost).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the block sizes.
    pub fn mean_linear_cost(&self, c_b: &[f64], c0: &[f64], growth: &[f64]) -> f64 {
        assert_eq!(c_b.len(), self.boundary.len(), "boundary cost length");
        let m = self.levels.first().map_or(0, Vec::len);
        assert_eq!(c0.len(), m, "level cost length");
        assert_eq!(growth.len(), m, "growth length");
        let mut total: f64 = self.boundary.iter().zip(c_b).map(|(p, c)| p * c).sum();
        for (q, v) in self.levels.iter().enumerate() {
            for (j, &p) in v.iter().enumerate() {
                total += p * (c0[j] + q as f64 * growth[j]);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveOptions, Tail};
    use slb_linalg::Matrix;

    fn mm1_dense(lam: f64, mu: f64) -> QbdBlocks {
        QbdBlocks::new(
            Matrix::from_vec(1, 1, vec![-lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![-(lam + mu)]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
        )
        .unwrap()
    }

    /// Two-phase QBD used across the dense tests.
    fn two_phase_dense() -> QbdBlocks {
        let (l0, l1, mu, r) = (0.3, 0.8, 1.0, 0.5);
        let a0 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
        let a2 = Matrix::from_rows(&[&[mu, 0.0], &[0.0, mu]]).unwrap();
        let a1 = Matrix::from_rows(&[&[-(l0 + mu + r), r], &[r, -(l1 + mu + r)]]).unwrap();
        let r00 = Matrix::from_rows(&[&[-(l0 + r), r], &[r, -(l1 + r)]]).unwrap();
        let r01 = a0.clone();
        let r10 = a2.clone();
        QbdBlocks::new(r00, r01, r10, a0, a1, a2).unwrap()
    }

    #[test]
    fn from_dense_round_trips_dimensions() {
        let sparse = SparseQbdBlocks::from_dense(&two_phase_dense());
        assert_eq!(sparse.boundary_len(), 2);
        assert_eq!(sparse.level_len(), 2);
    }

    #[test]
    fn drift_matches_dense() {
        let dense = two_phase_dense();
        let sparse = SparseQbdBlocks::from_dense(&dense);
        let (du, dd) = dense.drifts().unwrap();
        let (su, sd) = sparse.drifts().unwrap();
        assert!((du - su).abs() < 1e-10, "{du} vs {su}");
        assert!((dd - sd).abs() < 1e-10, "{dd} vs {sd}");
        assert!(sparse.is_stable().unwrap());
    }

    #[test]
    fn invalid_blocks_rejected() {
        let one = |v: f64| CsrMatrix::from_triplets(1, 1, [(0, 0, v)]).unwrap();
        // Boundary row sums to 1 instead of 0.
        let e = SparseQbdBlocks::new(one(-1.0), one(2.0), one(1.0), one(1.0), one(-2.0), one(1.0));
        assert!(matches!(e, Err(QbdError::InvalidBlocks { .. })));
        // Negative off-diagonal.
        let e = SparseQbdBlocks::new(
            one(-1.0),
            one(1.0),
            one(-1.0),
            one(1.0),
            one(-2.0),
            one(1.0),
        );
        assert!(matches!(e, Err(QbdError::InvalidBlocks { .. })));
    }

    #[test]
    fn decay_tail_matches_dense_mm1() {
        let rho = 0.7;
        let dense = mm1_dense(rho, 1.0);
        let full = dense.solve(&SolveOptions::default()).unwrap();
        let sparse = SparseQbdBlocks::from_dense(&dense);
        let trunc = sparse
            .solve_decay_tail(&SparseSolveOptions::default())
            .unwrap();
        assert!((trunc.boundary()[0] - full.boundary()[0]).abs() < 1e-10);
        for q in 0..6 {
            let want = full.level_prob(q)[0];
            let got = trunc.levels()[q][0];
            assert!((got - want).abs() < 1e-10, "level {q}: {got} vs {want}");
        }
        assert!((trunc.total_mass() - 1.0).abs() < 1e-9);
        assert!((trunc.decay() - rho).abs() < 1e-6);
    }

    #[test]
    fn decay_tail_matches_dense_two_phase() {
        let dense = two_phase_dense();
        let full = dense.solve(&SolveOptions::default()).unwrap();
        let sparse = SparseQbdBlocks::from_dense(&dense);
        let trunc = sparse
            .solve_decay_tail(&SparseSolveOptions::default())
            .unwrap();
        for i in 0..2 {
            assert!((trunc.boundary()[i] - full.boundary()[i]).abs() < 1e-9);
        }
        for q in 0..5 {
            let want = full.level_prob(q);
            for (i, w) in want.iter().enumerate().take(2) {
                assert!(
                    (trunc.levels()[q][i] - w).abs() < 1e-9,
                    "level {q} phase {i}"
                );
            }
        }
        // Linear cost agrees with the closed-form dense evaluation.
        let c_b = [0.0, 0.0];
        let c0 = [1.0, 1.0];
        let growth = [1.0, 1.0];
        let want = full.mean_linear_cost(&c_b, &c0, &growth);
        let got = trunc.mean_linear_cost(&c_b, &c0, &growth);
        assert!((got - want).abs() < 1e-8, "{got} vs {want}");
    }

    #[test]
    fn decay_tail_detects_unstable() {
        let dense = mm1_dense(1.3, 1.0);
        let sparse = SparseQbdBlocks::from_dense(&dense);
        assert!(matches!(
            sparse.solve_decay_tail(&SparseSolveOptions::default()),
            Err(QbdError::Unstable { .. })
        ));
    }

    #[test]
    fn scalar_tail_matches_dense() {
        let rho = 0.6;
        let dense = mm1_dense(rho, 1.0);
        let want = dense
            .solve_with_scalar_tail(rho, &SolveOptions::default())
            .unwrap();
        let sparse = SparseQbdBlocks::from_dense(&dense);
        let got = sparse
            .solve_scalar_tail(rho, &SparseSolveOptions::default())
            .unwrap();
        assert!((got.boundary()[0] - want.boundary()[0]).abs() < 1e-10);
        assert!((got.level_prob(3)[0] - want.level_prob(3)[0]).abs() < 1e-10);
        assert_eq!(got.tail(), &Tail::Scalar(rho));
        assert!(got.residual() < 1e-9);
    }
}
