use std::error::Error;
use std::fmt;

use slb_linalg::LinalgError;
use slb_markov::MarkovError;

/// Error type for QBD construction and solution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QbdError {
    /// The supplied blocks do not form a valid QBD generator.
    InvalidBlocks {
        /// Which structural condition failed.
        reason: String,
    },
    /// The QBD is not positive recurrent: Neuts' drift condition
    /// `π A0 e < π A2 e` fails, so no stationary distribution exists.
    Unstable {
        /// Mean upward drift `π A0 e`.
        up_drift: f64,
        /// Mean downward drift `π A2 e`.
        down_drift: f64,
    },
    /// An iterative stage (logarithmic reduction, functional iteration)
    /// exhausted its budget.
    NoConvergence {
        /// Name of the stage.
        method: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iterate.
        residual: f64,
    },
    /// An iterative stage was interrupted cooperatively: its
    /// [`Budget`](slb_linalg::Budget) expired, its cancel token fired,
    /// or the `solver.cancel` fail point triggered mid-solve.
    Interrupted {
        /// Name of the interrupted stage.
        method: &'static str,
        /// Iterations completed before the interruption.
        iterations: usize,
        /// Residual at the point of interruption (`NaN` when the stage
        /// had not yet measured one).
        residual: f64,
        /// Wall-clock time the stage ran before being interrupted.
        elapsed: std::time::Duration,
    },
    /// An underlying dense linear-algebra operation failed.
    Linalg(LinalgError),
    /// An underlying Markov-chain computation failed (e.g. the drift
    /// chain `A = A0+A1+A2` is reducible).
    Markov(MarkovError),
}

impl fmt::Display for QbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QbdError::InvalidBlocks { reason } => write!(f, "invalid QBD blocks: {reason}"),
            QbdError::Unstable {
                up_drift,
                down_drift,
            } => write!(
                f,
                "QBD is not positive recurrent: up drift {up_drift:.6} >= down drift {down_drift:.6}"
            ),
            QbdError::NoConvergence {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            QbdError::Interrupted {
                method,
                iterations,
                residual,
                elapsed,
            } => write!(
                f,
                "{method} interrupted after {iterations} iterations \
                 ({:.3}s elapsed, residual {residual:.3e})",
                elapsed.as_secs_f64()
            ),
            QbdError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            QbdError::Markov(e) => write!(f, "markov failure: {e}"),
        }
    }
}

impl Error for QbdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QbdError::Linalg(e) => Some(e),
            QbdError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for QbdError {
    fn from(e: LinalgError) -> Self {
        match e {
            // A cooperative interruption is a budget event, not a
            // numeric failure; keep its structure so callers can report
            // progress without unwrapping the linalg layer.
            LinalgError::Interrupted {
                method,
                iterations,
                residual,
                elapsed,
            } => QbdError::Interrupted {
                method,
                iterations,
                residual,
                elapsed,
            },
            // Iteration-cap exhaustion is likewise a structured status,
            // not an opaque numeric failure: callers report it as a
            // `nonconverged` row instead of silently using the last
            // iterate.
            LinalgError::NoConvergence {
                method,
                iterations,
                residual,
            } => QbdError::NoConvergence {
                method,
                iterations,
                residual,
            },
            other => QbdError::Linalg(other),
        }
    }
}

impl From<MarkovError> for QbdError {
    fn from(e: MarkovError) -> Self {
        QbdError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QbdError::Unstable {
            up_drift: 1.2,
            down_drift: 1.0,
        };
        assert!(e.to_string().contains("not positive recurrent"));
        let e = QbdError::InvalidBlocks {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn conversion_chain() {
        let le = LinalgError::NotSquare { shape: (1, 2) };
        let qe = QbdError::from(le.clone());
        assert_eq!(qe, QbdError::Linalg(le));
        assert!(Error::source(&qe).is_some());
    }

    #[test]
    fn interrupted_converts_structurally() {
        let le = LinalgError::Interrupted {
            method: "null_vector_gs",
            iterations: 42,
            residual: 1e-3,
            elapsed: std::time::Duration::from_millis(250),
        };
        match QbdError::from(le) {
            QbdError::Interrupted {
                method: "null_vector_gs",
                iterations: 42,
                ..
            } => {}
            other => panic!("expected structural Interrupted, got {other:?}"),
        }
    }
}
