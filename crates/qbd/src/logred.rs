//! Computation of the first-passage matrix `G` and the rate matrix `R`.
//!
//! `G[i][j]` is the probability that, starting in phase `i` of level
//! `q ≥ 1`, the QBD's first visit to level `q − 1` happens in phase `j`.
//! It is the minimal nonnegative solution of
//!
//! ```text
//! A2 + A1·G + A0·G² = 0 .
//! ```
//!
//! Two algorithms are provided:
//!
//! * [`logarithmic_reduction`] — Latouche & Ramaswami (1993). Quadratic
//!   convergence; the paper reports (and our tests confirm) convergence
//!   within ~6 iterations for every SQ(d) configuration evaluated.
//! * [`functional_iteration`] — the natural fixed point
//!   `G ← (−A1)⁻¹ (A2 + A0·G²)`; linear convergence, kept as an
//!   independent cross-check and as the baseline for the ablation bench.
//!
//! The rate matrix follows as `R = −A0 (A1 + A0·G)⁻¹` and satisfies
//! `A0 + R·A1 + R²·A2 = 0` ([`rate_matrix`]).

use slb_linalg::{power_iteration_sparse, Budget, CooBuilder, Lu, Matrix, Workspace};

use crate::lumped::SparseQbdBlocks;
use crate::{QbdBlocks, QbdError, Result};

/// Result of a converged `G` computation.
#[derive(Debug, Clone, PartialEq)]
pub struct GComputation {
    /// The first-passage matrix `G`.
    pub g: Matrix,
    /// Outer iterations used by the algorithm.
    pub iterations: usize,
    /// Final residual `‖A2 + A1 G + A0 G²‖∞`.
    pub residual: f64,
}

/// `‖A2 + A1·G + A0·G²‖∞` evaluated through the workspace kernel — two
/// scratch matrices, no temporaries. The term order matches the textbook
/// expression `(A2 + A1 G) + A0 G²` exactly, so the value agrees bit for
/// bit with the operator-overload formulation.
pub(crate) fn g_residual(blocks: &QbdBlocks, g: &Matrix, ws: &mut Workspace) -> f64 {
    let mut acc = ws.take();
    let mut tmp = ws.take();
    acc.copy_from(blocks.a2());
    let ok = "g_residual: blocks and G share one square shape";
    blocks.a1().mul_into(g, &mut tmp).expect(ok); // tmp = A1·G
    acc += &tmp;
    let mut a0g = ws.take();
    blocks.a0().mul_into(g, &mut a0g).expect(ok); // A0·G
    a0g.mul_into(g, &mut tmp).expect(ok); // tmp = A0·G²
    acc += &tmp;
    let r = acc.norm_inf();
    ws.put(acc);
    ws.put(tmp);
    ws.put(a0g);
    r
}

/// Computes `G` by the logarithmic-reduction algorithm of Latouche &
/// Ramaswami.
///
/// Iterates until the additive update falls below `tol` in infinity norm
/// or `max_iter` doublings have been performed. Each iteration squares the
/// effective horizon, so `max_iter = 64` already covers `2⁶⁴` levels; the
/// practical default of `tol = 1e-14, max_iter = 64` is what the paper's
/// "within k = 6" claim refers to.
///
/// # Errors
///
/// * [`QbdError::NoConvergence`] if `max_iter` is exhausted.
/// * [`QbdError::Linalg`] if an inner solve fails (structurally impossible
///   for a valid transient/recurrent QBD, but surfaced rather than
///   panicking).
///
/// # Example
///
/// ```
/// use slb_linalg::Matrix;
/// use slb_qbd::{logarithmic_reduction, QbdBlocks};
///
/// # fn main() -> Result<(), slb_qbd::QbdError> {
/// // M/M/1, λ = 0.5, µ = 1: G = [1] (recurrent).
/// let b = QbdBlocks::new(
///     Matrix::from_vec(1, 1, vec![-0.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
///     Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![-1.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
/// )?;
/// let g = logarithmic_reduction(&b, 1e-14, 64)?;
/// assert!((g.g[(0, 0)] - 1.0).abs() < 1e-12);
/// assert!(g.iterations <= 8);
/// # Ok(())
/// # }
/// ```
pub fn logarithmic_reduction(
    blocks: &QbdBlocks,
    tol: f64,
    max_iter: usize,
) -> Result<GComputation> {
    let mut ws = Workspace::square(blocks.level_len());
    logarithmic_reduction_in(blocks, tol, max_iter, &mut ws)
}

/// [`logarithmic_reduction`] drawing its scratch matrices from a
/// caller-owned [`Workspace`] instead of a fresh pool.
///
/// Long-lived drivers that solve many same-shape QBDs — the sweep
/// executor's worker threads in particular — keep one pool per block
/// shape and amortize all scratch allocation across jobs; after the
/// first call on a given shape the setup phase allocates nothing but
/// the returned `G`.
///
/// # Errors
///
/// As [`logarithmic_reduction`], plus [`QbdError::InvalidBlocks`] when
/// the workspace shape does not match the blocks' level length.
pub fn logarithmic_reduction_in(
    blocks: &QbdBlocks,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> Result<GComputation> {
    logarithmic_reduction_in_budgeted(blocks, tol, max_iter, ws, &Budget::unlimited())
}

/// [`logarithmic_reduction_in`] under a cooperative [`Budget`], polled
/// once per doubling iteration.
///
/// An interruption returns every scratch matrix to the caller's pool —
/// exactly like the existing failure paths — before surfacing
/// [`QbdError::Interrupted`] with the doublings completed and the last
/// additive update as the residual.
///
/// # Errors
///
/// As [`logarithmic_reduction_in`], plus [`QbdError::Interrupted`].
pub fn logarithmic_reduction_in_budgeted(
    blocks: &QbdBlocks,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
    budget: &Budget,
) -> Result<GComputation> {
    let m = blocks.level_len();
    if ws.shape() != (m, m) {
        return Err(QbdError::InvalidBlocks {
            reason: format!(
                "workspace shape {:?} does not match QBD level length {m}",
                ws.shape()
            ),
        });
    }
    let ok = "logred: all QBD blocks share one square shape";

    // Setup (the only allocating phase): factor −A1 and form
    // H = (−A1)⁻¹ A0 (up), L = (−A1)⁻¹ A2 (down). Every fallible step
    // returns its scratch to the pool before bailing so a failure (a
    // singular factor from degenerate blocks) leaves a caller-owned
    // pool warm, not leaking its matrices.
    let mut scratch = ws.take();
    scratch.copy_from(blocks.a1());
    scratch.scale_in_place(-1.0);
    let mut lu = match Lu::new(&scratch) {
        Ok(lu) => lu,
        Err(e) => {
            ws.put(scratch);
            return Err(e.into());
        }
    };
    let mut h = ws.take();
    let mut l = ws.take();
    if let Err(e) = lu
        .solve_mat_into(blocks.a0(), &mut h)
        .and_then(|()| lu.solve_mat_into(blocks.a2(), &mut l))
    {
        ws.put(scratch);
        ws.put(h);
        ws.put(l);
        return Err(e.into());
    }

    let mut g = ws.take();
    g.copy_from(&l);
    let mut t = ws.take();
    t.copy_from(&h);

    // Per-iteration scratch, reused every round: the loop below performs
    // zero heap allocation (pinned by `tests/alloc_free.rs`).
    let mut u = ws.take();
    let mut sq = ws.take();
    let mut last_delta = f64::NAN;

    for it in 1..=max_iter {
        // The budget poll honours the same scratch discipline as every
        // other early exit: the pool gets all seven matrices back.
        if let Err(e) = budget.check("logarithmic_reduction", it - 1, last_delta) {
            ws.put(scratch);
            ws.put(u);
            ws.put(sq);
            ws.put(h);
            ws.put(l);
            ws.put(g);
            ws.put(t);
            return Err(e.into());
        }
        // U = H·L + L·H ; H ← (I−U)⁻¹ H² ; L ← (I−U)⁻¹ L².
        h.mul_into(&l, &mut u).expect(ok);
        l.mul_into(&h, &mut scratch).expect(ok);
        u += &scratch;
        u.scale_in_place(-1.0);
        u.add_assign_scaled_identity(1.0).expect(ok); // u = I − U
        if let Err(e) = lu.refactor(&u) {
            ws.put(scratch);
            ws.put(u);
            ws.put(sq);
            ws.put(h);
            ws.put(l);
            ws.put(g);
            ws.put(t);
            return Err(e.into());
        }
        h.mul_into(&h, &mut sq).expect(ok);
        lu.solve_mat_into(&sq, &mut h).expect(ok);
        l.mul_into(&l, &mut sq).expect(ok);
        lu.solve_mat_into(&sq, &mut l).expect(ok);

        // G += T·L ; T ← T·H.
        t.mul_into(&l, &mut scratch).expect(ok);
        let delta = scratch.norm_inf();
        last_delta = delta;
        g += &scratch;
        t.mul_into(&h, &mut u).expect(ok);
        std::mem::swap(&mut t, &mut u);

        if delta < tol {
            // Retire the loop scratch into the pool; g_residual recycles
            // it instead of allocating, and a reused pool starts the
            // next same-shape solve fully warm.
            ws.put(scratch);
            ws.put(u);
            ws.put(sq);
            ws.put(h);
            ws.put(l);
            ws.put(t);
            return Ok(GComputation {
                residual: g_residual(blocks, &g, ws),
                g,
                iterations: it,
            });
        }
    }
    ws.put(scratch);
    ws.put(u);
    ws.put(sq);
    ws.put(h);
    ws.put(l);
    ws.put(t);
    Err(QbdError::NoConvergence {
        method: "logarithmic_reduction",
        iterations: max_iter,
        residual: g_residual(blocks, &g, ws),
    })
}

/// Computes `G` by natural functional iteration
/// `G ← (−A1)⁻¹ (A2 + A0·G²)` starting from `G = 0`.
///
/// Converges monotonically (entrywise, from below) to the minimal
/// nonnegative solution, but only linearly — hundreds of iterations at
/// high loads, versus ~6 for [`logarithmic_reduction`]. Kept as an
/// independent oracle and ablation baseline.
///
/// # Errors
///
/// * [`QbdError::NoConvergence`] if `max_iter` is exhausted before the
///   successive-iterate change drops below `tol`.
/// * [`QbdError::Linalg`] if `A1` is singular (invalid QBD).
pub fn functional_iteration(blocks: &QbdBlocks, tol: f64, max_iter: usize) -> Result<GComputation> {
    functional_iteration_budgeted(blocks, tol, max_iter, &Budget::unlimited())
}

/// [`functional_iteration`] under a cooperative [`Budget`], polled once
/// per fixed-point step (the linear convergence means hundreds of steps
/// at high load, so the step is the natural batch).
///
/// # Errors
///
/// As [`functional_iteration`], plus [`QbdError::Interrupted`].
pub fn functional_iteration_budgeted(
    blocks: &QbdBlocks,
    tol: f64,
    max_iter: usize,
    budget: &Budget,
) -> Result<GComputation> {
    let m = blocks.level_len();
    let mut ws = Workspace::square(m);
    let ok = "functional_iteration: all QBD blocks share one square shape";

    let mut rhs = ws.take();
    rhs.copy_from(blocks.a1());
    rhs.scale_in_place(-1.0);
    let lu = Lu::new(&rhs)?;
    let mut g = ws.take();
    g.fill(0.0);
    // Per-iteration scratch; the loop allocates nothing.
    let mut gg = ws.take();
    let mut next = ws.take();
    let mut last_delta = f64::NAN;
    for it in 1..=max_iter {
        budget.check("functional_iteration", it - 1, last_delta)?;
        g.mul_into(&g, &mut gg).expect(ok); // G²
        blocks.a0().mul_into(&gg, &mut rhs).expect(ok); // A0·G²
        rhs += blocks.a2(); // A2 + A0·G²
        lu.solve_mat_into(&rhs, &mut next).expect(ok);
        let delta = next.norm_inf_diff(&g);
        last_delta = delta;
        std::mem::swap(&mut g, &mut next);
        if delta < tol {
            // Retire the loop scratch; g_residual recycles it.
            ws.put(rhs);
            ws.put(gg);
            ws.put(next);
            return Ok(GComputation {
                residual: g_residual(blocks, &g, &mut ws),
                g,
                iterations: it,
            });
        }
    }
    ws.put(rhs);
    ws.put(gg);
    ws.put(next);
    Err(QbdError::NoConvergence {
        method: "functional_iteration",
        iterations: max_iter,
        residual: g_residual(blocks, &g, &mut ws),
    })
}

/// Computes the rate matrix `R = −A0 (A1 + A0·G)⁻¹` from a converged `G`.
///
/// `R[i][j]` is the expected sojourn time in phase `j` of level `q+1`,
/// per unit of sojourn in phase `i` of level `q`, before returning to
/// level `q` (Neuts). The stationary tail is `π_{q+1} = π_q R`.
///
/// # Errors
///
/// [`QbdError::Linalg`] if `A1 + A0 G` is singular, which signals a
/// non-irreducible or unstable QBD.
pub fn rate_matrix(blocks: &QbdBlocks, g: &Matrix) -> Result<Matrix> {
    let m = blocks.level_len();
    let mut ws = Workspace::square(m);

    // inner = A1 + A0·G, then transposed in place into scratch. `g` is
    // caller-supplied, so its shape errors propagate (a wrong-shaped `G`
    // fails the `mul_into` check against the m×m scratch).
    let mut prod = ws.take();
    blocks.a0().mul_into(g, &mut prod)?;
    prod.axpy(1.0, blocks.a1())?;
    let mut inner_t = ws.take();
    prod.transpose_into(&mut inner_t);
    // R = −A0 · inner⁻¹  ⇔  R · inner = −A0  ⇔  innerᵀ Rᵀ = −A0ᵀ.
    let lu = Lu::new(&inner_t)?;
    let mut rhs = ws.take();
    blocks.a0().transpose_into(&mut rhs);
    rhs.scale_in_place(-1.0);
    let mut rt = ws.take();
    lu.solve_mat_into(&rhs, &mut rt)?;
    let mut r = ws.take();
    rt.transpose_into(&mut r);
    Ok(r)
}

/// Floor below which [`decay_rate_sparse`] reports the decay rate as
/// effectively zero rather than resolving further orders of magnitude.
const DECAY_FLOOR: f64 = 1e-14;

/// Assembles `A(z) = A0 + z·A1 + z²·A2` (scaled by `sign`) in sparse
/// form.
fn quadratic_at(blocks: &SparseQbdBlocks, z: f64, sign: f64) -> Result<slb_linalg::CsrMatrix> {
    let m = blocks.level_len();
    let mut coo = CooBuilder::new(m, m);
    for (blk, w) in [
        (blocks.a0(), sign),
        (blocks.a1(), sign * z),
        (blocks.a2(), sign * z * z),
    ] {
        for r in 0..m {
            for (c, v) in blk.row(r) {
                coo.add(r, c, w * v).map_err(QbdError::Linalg)?;
            }
        }
    }
    Ok(coo.build())
}

/// Perron (largest real) eigenvalue of the essentially nonnegative
/// `A(z) = A0 + z·A1 + z²·A2`, via a diagonal shift and sparse power
/// iteration.
fn perron_of_quadratic(blocks: &SparseQbdBlocks, z: f64) -> Result<f64> {
    let m = blocks.level_len();
    let a = quadratic_at(blocks, z, 1.0)?;
    // Shift by the most negative diagonal so the matrix is nonnegative
    // and the Perron root is the dominant eigenvalue.
    let mut shift = 0.0_f64;
    for r in 0..m {
        shift = shift.max(-a.get(r, r));
    }
    let shifted = a.plus_scaled_identity(shift).map_err(QbdError::Linalg)?;
    let p = power_iteration_sparse(&shifted, 1e-13, 2_000).map_err(QbdError::Linalg)?;
    Ok(p.eigenvalue - shift)
}

/// Sign of the Perron root `χ(z)` of `A(z)`, robust to the graded
/// regime where power iteration stalls.
///
/// For the lumped SQ(d) blocks `A0` is *nilpotent* (every up-transition
/// strictly lowers the within-block template total), so for small `z`
/// the spectrum of `A(z)` is a Puiseux cluster of near-equal moduli and
/// power iteration cannot separate the dominant eigenvalue. In that
/// case the sign is decided by the regular-splitting criterion instead:
/// `χ(z) < 0` iff `−A(z)` is a nonsingular M-matrix iff Gauss–Seidel on
/// `(−A(z))x = e` converges (its nonnegative iterates diverge exactly
/// when the splitting radius reaches 1).
fn perron_sign_of_quadratic(blocks: &SparseQbdBlocks, z: f64, budget: &Budget) -> Result<bool> {
    match perron_of_quadratic(blocks, z) {
        Ok(chi) if chi.is_finite() => Ok(chi > 0.0),
        Ok(_) => m_matrix_sign(blocks, z, budget),
        Err(QbdError::Linalg(_)) => m_matrix_sign(blocks, z, budget),
        Err(e) => Err(e),
    }
}

/// Regular-splitting sign test: returns `true` iff `χ(z) ≥ 0`, i.e. iff
/// Gauss–Seidel on `(−A(z))x = 1` fails to converge (see
/// [`perron_sign_of_quadratic`]).
fn m_matrix_sign(blocks: &SparseQbdBlocks, z: f64, budget: &Budget) -> Result<bool> {
    let m = blocks.level_len();
    let b = quadratic_at(blocks, z, -1.0)?; // −A(z): Z-matrix, diag > 0
    let mut diag = vec![0.0; m];
    for (r, d) in diag.iter_mut().enumerate() {
        *d = b.get(r, r);
        if *d <= 0.0 {
            return Err(QbdError::InvalidBlocks {
                reason: format!("−A({z}) has non-positive diagonal {d} in row {r}"),
            });
        }
    }
    // Monotone GS iterates from 0: x_{k+1} = H x_k + c with H ≥ 0,
    // c ≥ 0, so ‖x‖ either settles (M-matrix, χ < 0) or blows up.
    let mut x = vec![0.0_f64; m];
    let (blow_up, max_sweeps) = (1e12, 20_000);
    let mut last_delta = f64::INFINITY;
    let mut growth = 1.0;
    for sweep in 0..max_sweeps {
        // The sign test can burn thousands of sweeps near the root;
        // poll every 64 to keep the per-sweep cost unmeasurable.
        if sweep % 64 == 0 {
            budget.check("m_matrix_sign", sweep, last_delta)?;
        }
        let mut delta: f64 = 0.0;
        let mut norm: f64 = 0.0;
        for r in 0..m {
            let mut acc = 1.0; // rhs e_r = 1
            for (c, v) in b.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            let next = acc / diag[r];
            delta = delta.max((next - x[r]).abs());
            x[r] = next;
            norm = norm.max(next.abs());
        }
        if norm > blow_up {
            return Ok(true);
        }
        if delta <= 1e-12 * (1.0 + norm) {
            return Ok(false);
        }
        growth = delta / last_delta.max(f64::MIN_POSITIVE);
        last_delta = delta;
    }
    // Near the root the splitting radius is ≈ 1 and neither limit is
    // reached within the cap; classify by the terminal per-sweep growth
    // of the update (≥ 1 ⇒ diverging ⇒ χ ≥ 0). Either call only
    // misplaces the bisection bracket by its current width.
    Ok(growth >= 1.0)
}

/// Decay-rate-only fast path: computes `sp(R)` — the geometric tail
/// decay per level — **without ever forming `R`**, as the unique root in
/// `(0, 1)` of the Perron eigenvalue of `A(z) = A0 + z·A1 + z²·A2`
/// (`χ(z)` is positive below the root, negative between it and 1, and
/// `χ(1) = 0`). Each evaluation is one diagonal shift plus one
/// [`power_iteration_sparse`](slb_linalg::power_iteration_sparse) on a
/// CSR matrix — with a Gauss–Seidel M-matrix sign test as fallback for
/// the nilpotent-`A0` regime where the spectrum clusters — so the cost
/// per bisection step is `O(nnz · sweeps)`; this is the tail-exponent
/// path for lumped blocks whose `R` would be dense and enormous.
///
/// The bisection runs in log space (the root scales like `ρᴺ` and can be
/// far below 1e-9 at production `N`) until the bracket is within relative
/// width `tol`; rates smaller than an internal floor of `1e-14` are
/// reported as the floor.
///
/// Dense counterpart: [`decay_rate`](crate::decay_rate), which computes
/// `G`, then `R`, then its spectral radius.
///
/// # Errors
///
/// * [`QbdError::Unstable`] if Neuts' drift condition fails (the root
///   would be ≥ 1).
/// * [`QbdError::NoConvergence`] if the sign bracket cannot be
///   established (numerically marginal stability).
/// * [`QbdError::Linalg`] from a failed power iteration.
///
/// # Examples
///
/// For M/M/1 the decay rate is exactly ρ:
///
/// ```
/// use slb_linalg::CsrMatrix;
/// use slb_qbd::{decay_rate_sparse, SparseQbdBlocks};
///
/// # fn main() -> Result<(), slb_qbd::QbdError> {
/// let (lam, mu) = (0.4, 1.0);
/// let one = |v: f64| CsrMatrix::from_triplets(1, 1, [(0, 0, v)]).unwrap();
/// let blocks = SparseQbdBlocks::new(
///     one(-lam), one(lam), one(mu),
///     one(lam), one(-(lam + mu)), one(mu),
/// )?;
/// let eta = decay_rate_sparse(&blocks, 1e-10)?;
/// assert!((eta - 0.4).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn decay_rate_sparse(blocks: &SparseQbdBlocks, tol: f64) -> Result<f64> {
    decay_rate_sparse_budgeted(blocks, tol, &Budget::unlimited())
}

/// [`decay_rate_sparse`] under a cooperative [`Budget`], polled once
/// per bisection step and every 64 sweeps inside the Gauss–Seidel sign
/// fallback.
///
/// # Errors
///
/// As [`decay_rate_sparse`], plus [`QbdError::Interrupted`]. The
/// bisection cap surfaces as [`QbdError::NoConvergence`] (carrying the
/// step count and residual bracket width) rather than silently
/// reporting the midpoint of an unconverged bracket.
pub fn decay_rate_sparse_budgeted(
    blocks: &SparseQbdBlocks,
    tol: f64,
    budget: &Budget,
) -> Result<f64> {
    let (up, down) = blocks.drifts_budgeted(budget)?;
    if up >= down {
        return Err(QbdError::Unstable {
            up_drift: up,
            down_drift: down,
        });
    }
    // Bracket the root: χ > 0 on (0, η), χ < 0 on (η, 1). Roots at or
    // below the floor collapse the bracket onto the floor, which is
    // then reported as-is (downstream truncation depths are insensitive
    // at that scale).
    let mut lo = DECAY_FLOOR;
    let mut hi = 1.0 - 1e-9;
    if perron_sign_of_quadratic(blocks, hi, budget)? {
        return Err(QbdError::NoConvergence {
            method: "decay_rate_bisection",
            iterations: 0,
            residual: f64::NAN,
        });
    }
    // Log-space bisection: relative precision on a root that may sit
    // anywhere between the floor and 1.
    let mut iters = 0usize;
    while hi - lo > tol * hi {
        budget.check("decay_rate_bisection", iters, hi - lo)?;
        if iters >= 200 {
            // Reporting the midpoint of a wide bracket as "the decay
            // rate" silently poisons every tail bound downstream;
            // surface the unconverged bracket instead.
            return Err(QbdError::NoConvergence {
                method: "decay_rate_bisection",
                iterations: iters,
                residual: hi - lo,
            });
        }
        let mid = (lo * hi).sqrt();
        if perron_sign_of_quadratic(blocks, mid, budget)? {
            lo = mid;
        } else {
            hi = mid;
        }
        iters += 1;
    }
    Ok((lo * hi).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1_blocks(lam: f64, mu: f64) -> QbdBlocks {
        QbdBlocks::new(
            Matrix::from_vec(1, 1, vec![-lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![-(lam + mu)]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
        )
        .unwrap()
    }

    /// A 2-phase QBD: MMPP-modulated M/M/1-type queue. Phase switches at
    /// rate r; arrivals at rate λ_i per phase; service µ.
    fn two_phase_blocks(l0: f64, l1: f64, mu: f64, r: f64) -> QbdBlocks {
        let a0 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
        let a2 = Matrix::from_rows(&[&[mu, 0.0], &[0.0, mu]]).unwrap();
        let a1 = Matrix::from_rows(&[&[-(l0 + mu + r), r], &[r, -(l1 + mu + r)]]).unwrap();
        // Boundary: empty system in phase i; only arrivals and switches.
        let r00 = Matrix::from_rows(&[&[-(l0 + r), r], &[r, -(l1 + r)]]).unwrap();
        let r01 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
        let r10 = a2.clone();
        QbdBlocks::new(r00, r01, r10, a0, a1, a2).unwrap()
    }

    #[test]
    fn mm1_g_is_one() {
        let b = mm1_blocks(0.5, 1.0);
        let g = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        assert!((g.g[(0, 0)] - 1.0).abs() < 1e-13);
        assert!(g.residual < 1e-12);
    }

    #[test]
    fn mm1_rate_matrix_is_rho() {
        let (lam, mu) = (0.7, 1.0);
        let b = mm1_blocks(lam, mu);
        let g = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        let r = rate_matrix(&b, &g.g).unwrap();
        assert!((r[(0, 0)] - lam / mu).abs() < 1e-12, "R = {:?}", r);
    }

    #[test]
    fn logred_and_functional_agree() {
        let b = two_phase_blocks(0.4, 1.2, 1.0, 0.3);
        let g1 = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        let g2 = functional_iteration(&b, 1e-13, 200_000).unwrap();
        assert!(
            g1.g.approx_eq(&g2.g, 1e-9),
            "logred {:?} vs functional {:?}",
            g1.g,
            g2.g
        );
        assert!(g1.iterations < g2.iterations);
    }

    #[test]
    fn g_is_stochastic_for_stable_qbd() {
        let b = two_phase_blocks(0.4, 0.9, 1.0, 0.25);
        assert!(b.is_stable().unwrap());
        let g = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        for r in 0..2 {
            let s: f64 = g.g.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "row {r} sums to {s}");
            assert!(g.g.row(r).iter().all(|&v| v >= -1e-14));
        }
    }

    #[test]
    fn g_substochastic_for_unstable_qbd() {
        // Transient upward QBD: λ > µ. G exists but is strictly
        // substochastic.
        let b = mm1_blocks(2.0, 1.0);
        let g = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        assert!(g.g[(0, 0)] < 1.0 - 1e-6);
        // For M/M/1 the return probability is µ/λ.
        assert!((g.g[(0, 0)] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn quadratic_equation_satisfied() {
        let b = two_phase_blocks(0.8, 0.2, 1.0, 0.6);
        let g = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        assert!(g.residual < 1e-11, "residual {}", g.residual);
        let r = rate_matrix(&b, &g.g).unwrap();
        // A0 + R A1 + R² A2 = 0.
        let res = &(&(b.a0() + &(&r * b.a1())) + &(&(&r * &r) * b.a2())).norm_inf();
        assert!(*res < 1e-11, "R residual {res}");
    }

    #[test]
    fn iteration_count_small() {
        // The paper's in-text claim: logarithmic reduction converges within
        // ~6 iterations across its configurations.
        for &(l0, l1) in &[(0.2, 0.5), (0.5, 0.9), (0.85, 0.95)] {
            let b = two_phase_blocks(l0, l1, 1.0, 0.4);
            let g = logarithmic_reduction(&b, 1e-13, 64).unwrap();
            assert!(g.iterations <= 10, "iterations {}", g.iterations);
        }
    }

    #[test]
    fn rate_matrix_rejects_wrong_shaped_g() {
        // Public entry point: a caller-supplied G of the wrong shape is a
        // recoverable error, not a panic.
        let b = two_phase_blocks(0.4, 1.2, 1.0, 0.3);
        let bad_g = Matrix::zeros(3, 3);
        assert!(matches!(rate_matrix(&b, &bad_g), Err(QbdError::Linalg(_))));
    }

    #[test]
    fn cancelled_budget_interrupts_g_computations() {
        use slb_linalg::CancelToken;
        let b = two_phase_blocks(0.4, 1.2, 1.0, 0.3);
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().cancel_token(token);
        let mut ws = Workspace::square(b.level_len());
        match logarithmic_reduction_in_budgeted(&b, 1e-14, 64, &mut ws, &budget) {
            Err(QbdError::Interrupted {
                method: "logarithmic_reduction",
                iterations: 0,
                ..
            }) => {}
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // The interruption path returned all scratch: the pool can run a
        // full solve without the shape check tripping on missing mats.
        logarithmic_reduction_in(&b, 1e-14, 64, &mut ws).unwrap();
        assert!(matches!(
            functional_iteration_budgeted(&b, 1e-13, 200_000, &budget),
            Err(QbdError::Interrupted {
                method: "functional_iteration",
                ..
            })
        ));
    }

    #[test]
    fn no_convergence_budget_respected() {
        let b = two_phase_blocks(0.9, 0.99, 1.0, 0.1);
        let e = logarithmic_reduction(&b, 1e-16, 1);
        match e {
            Err(QbdError::NoConvergence { iterations: 1, .. }) => {}
            other => panic!("expected NoConvergence after 1 iteration, got {other:?}"),
        }
    }
}
