//! Stationary analysis of the QBD: Theorem 1 (matrix-geometric tail) and
//! the Theorem 2/3 scalar-tail shortcut of the paper.
//!
//! With blocks `(R00, R01, R10, A0, A1, A2)` and rate matrix `R`, the
//! stationary vector `(π_b, π_0, π_1, π_2, …)` satisfies `π_{q+1} = π_q R`
//! for `q ≥ 1` and the finite balance system
//!
//! ```text
//!                      ⎡ R00  R01      0     ⎤
//! (π_b, π_0, π_1)  ·   ⎢ R10  A1      A0     ⎥  =  0
//!                      ⎣  0   A2   A1 + R·A2 ⎦
//! ```
//!
//! normalized by `π_b e + π_0 e + π_1 (I − R)⁻¹ e = 1`.
//!
//! For the paper's **lower-bound model** Theorem 3 shows `R` can be
//! replaced by the scalar `ρᴺ` (more generally `σᴺ`, Theorem 2), removing
//! the `G`/`R` computation entirely; [`QbdBlocks::solve_with_scalar_tail`]
//! implements that dramatically cheaper path.

use slb_linalg::{null_vector_gs_budgeted, vector, CooBuilder, CsrMatrix, Lu, Matrix};

use crate::lumped::{add_csr_block_transposed, SparseQbdBlocks, SparseSolveOptions};
use crate::{logarithmic_reduction, rate_matrix, QbdBlocks, QbdError, Result};

/// Geometric tail operator of a solved QBD.
#[derive(Debug, Clone, PartialEq)]
pub enum Tail {
    /// `π_{q+1} = π_q · R` (Theorem 1).
    Matrix(Matrix),
    /// `π_{q+1} = β · π_q` (Theorems 2–3; `β = σᴺ`, `= ρᴺ` for Poisson).
    Scalar(f64),
}

/// Options controlling the `G` computation inside [`QbdBlocks::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Convergence tolerance for logarithmic reduction.
    pub g_tol: f64,
    /// Iteration budget for logarithmic reduction.
    pub g_max_iter: usize,
    /// Absolute residual above which the boundary solve falls back from
    /// the fast replace-one-equation path to least squares.
    pub residual_tol: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            g_tol: 1e-14,
            g_max_iter: 64,
            residual_tol: 1e-8,
        }
    }
}

/// The stationary distribution of a QBD, in the factored form
/// `(π_b, π_0, π_1, tail)`.
///
/// Probabilities of deeper levels are generated on demand via
/// [`QbdStationary::level_prob`]; expectations of costs that grow linearly
/// with the level are evaluated in closed form by
/// [`QbdStationary::mean_linear_cost`].
#[derive(Debug, Clone, PartialEq)]
pub struct QbdStationary {
    boundary: Vec<f64>,
    level0: Vec<f64>,
    level1: Vec<f64>,
    tail: Tail,
    /// `‖π M‖∞` of the solved finite system — a quality certificate.
    residual: f64,
    /// Iterations used by the G computation (0 for the scalar-tail path).
    g_iterations: usize,
}

impl QbdStationary {
    /// Stationary probabilities of the boundary states.
    pub fn boundary(&self) -> &[f64] {
        &self.boundary
    }

    /// Stationary probabilities of repeating level `q` (0-based).
    pub fn level_prob(&self, q: usize) -> Vec<f64> {
        match q {
            0 => self.level0.clone(),
            1 => self.level1.clone(),
            _ => match &self.tail {
                Tail::Matrix(r) => {
                    // Two ping-pong buffers; the level walk allocates
                    // nothing beyond them.
                    let mut v = self.level1.clone();
                    let mut next = vec![0.0; v.len()];
                    for _ in 1..q {
                        r.vec_mat_into(&v, &mut next);
                        std::mem::swap(&mut v, &mut next);
                    }
                    v
                }
                Tail::Scalar(b) => vector::scale(&self.level1, b.powi(q as i32 - 1)),
            },
        }
    }

    /// The tail operator.
    pub fn tail(&self) -> &Tail {
        &self.tail
    }

    /// Residual `‖π M‖∞` of the finite balance system.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Iterations used by the logarithmic reduction (0 when the scalar
    /// tail was supplied).
    pub fn g_iterations(&self) -> usize {
        self.g_iterations
    }

    /// Total probability mass `π_b e + Σ_q π_q e`; equals 1 up to
    /// round-off and is exposed as a sanity check.
    pub fn total_mass(&self) -> f64 {
        let (s, _) = self.tail_sums();
        vector::sum(&self.boundary) + vector::sum(&self.level0) + vector::sum(&s)
    }

    /// `(Σ_{q≥1} π_q, Σ_{q≥1} q·π_q)` in closed form.
    fn tail_sums(&self) -> (Vec<f64>, Vec<f64>) {
        match &self.tail {
            Tail::Matrix(r) => {
                // (I−R)ᵀ assembled in place from Rᵀ, without an identity
                // temporary. Row-vector solves:
                // x (I−R) = π₁  ⇔  (I−R)ᵀ xᵀ = π₁ᵀ.
                let mut i_minus_r_t = r.transpose();
                i_minus_r_t.scale_in_place(-1.0);
                i_minus_r_t
                    .add_assign_scaled_identity(1.0)
                    .expect("R is square");
                let lu = Lu::new(&i_minus_r_t).expect("I − R must be nonsingular");
                let s = lu.solve_vec(&self.level1).expect("tail sum solve");
                let qs = lu.solve_vec(&s).expect("weighted tail sum solve");
                (s, qs)
            }
            Tail::Scalar(b) => {
                let s = vector::scale(&self.level1, 1.0 / (1.0 - b));
                let qs = vector::scale(&self.level1, 1.0 / ((1.0 - b) * (1.0 - b)));
                (s, qs)
            }
        }
    }

    /// Expectation of a cost that is `c_b(i)` on boundary state `i` and
    /// `c0(j) + q·growth(j)` on state `j` of repeating level `q`.
    ///
    /// This covers every metric in the paper: for the number of waiting
    /// jobs, `growth ≡ N` because moving one level up adds one job to each
    /// of the `N` (all busy) servers.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the block sizes.
    pub fn mean_linear_cost(&self, c_b: &[f64], c0: &[f64], growth: &[f64]) -> f64 {
        assert_eq!(c_b.len(), self.boundary.len(), "boundary cost length");
        assert_eq!(c0.len(), self.level0.len(), "level cost length");
        assert_eq!(growth.len(), self.level0.len(), "growth length");
        let (s, qs) = self.tail_sums();
        vector::dot(&self.boundary, c_b)
            + vector::dot(&self.level0, c0)
            + vector::dot(&s, c0)
            + vector::dot(&qs, growth)
    }

    /// Probability mass of repeating level `q` (`Σ_j π_q(j)`).
    pub fn level_mass(&self, q: usize) -> f64 {
        vector::sum(&self.level_prob(q))
    }

    /// Visits the repeating levels in order, passing `(q, π_q)` to `f`,
    /// until the remaining level mass drops below `tail_tol`. The
    /// geometric tail guarantees termination after
    /// `O(log(1/tail_tol) / log(1/decay))` levels.
    ///
    /// This is the building block for expectations of costs with an
    /// arbitrary level structure that need the whole *vector* per level
    /// (e.g. the waiting-time distribution's mixture weights); scalar
    /// costs should prefer [`QbdStationary::mean_cost_per_level`].
    ///
    /// # Panics
    ///
    /// Panics unless `tail_tol ∈ (0, 1)`.
    pub fn for_each_level<F>(&self, tail_tol: f64, mut f: F)
    where
        F: FnMut(usize, &[f64]),
    {
        assert!(
            tail_tol > 0.0 && tail_tol < 1.0,
            "tail tolerance must be in (0, 1)"
        );
        f(0, &self.level0);
        let mut v = self.level1.clone();
        let mut next = vec![0.0; v.len()];
        let mut q = 1usize;
        while vector::sum(&v) >= tail_tol {
            f(q, &v);
            match &self.tail {
                Tail::Matrix(r) => {
                    r.vec_mat_into(&v, &mut next);
                    std::mem::swap(&mut v, &mut next);
                }
                Tail::Scalar(b) => vector::scale_in_place(&mut v, *b),
            }
            q += 1;
            debug_assert!(q < 100_000, "tail failed to decay");
        }
    }

    /// Expectation of a cost with an arbitrary (not necessarily linear)
    /// level dependence: `Σ_b π_b(i)·c_b(i) + Σ_q Σ_j π_q(j)·cost(q, j)`.
    ///
    /// Levels are summed until the remaining tail mass drops below
    /// `tail_tol`; because the tail is geometric this terminates after
    /// `O(log(1/tail_tol) / log(1/decay))` levels. Costs must be bounded
    /// (or at most polynomially growing) for the truncation to be
    /// meaningful; for *linear* costs prefer the closed-form
    /// [`QbdStationary::mean_linear_cost`].
    ///
    /// # Panics
    ///
    /// Panics if `c_b` has the wrong length or `tail_tol` is not in
    /// `(0, 1)`.
    pub fn mean_cost_per_level<F>(&self, c_b: &[f64], cost: F, tail_tol: f64) -> f64
    where
        F: Fn(usize, usize) -> f64,
    {
        assert_eq!(c_b.len(), self.boundary.len(), "boundary cost length");
        assert!(
            tail_tol > 0.0 && tail_tol < 1.0,
            "tail tolerance must be in (0, 1)"
        );
        let m = self.level0.len();
        let mut total = vector::dot(&self.boundary, c_b);
        // Level 0.
        for (j, &p) in self.level0.iter().enumerate() {
            total += p * cost(0, j);
        }
        // Levels q >= 1: iterate the tail operator in place.
        let mut v = self.level1.clone();
        let mut next = vec![0.0; v.len()];
        let mut q = 1usize;
        loop {
            let mass = vector::sum(&v);
            if mass < tail_tol {
                break;
            }
            for (j, &p) in v.iter().enumerate() {
                total += p * cost(q, j);
            }
            match &self.tail {
                Tail::Matrix(r) => {
                    r.vec_mat_into(&v, &mut next);
                    std::mem::swap(&mut v, &mut next);
                }
                Tail::Scalar(b) => vector::scale_in_place(&mut v, *b),
            }
            q += 1;
            debug_assert!(q < 100_000, "tail failed to decay");
            let _ = m;
        }
        total
    }
}

impl QbdBlocks {
    /// Solves the QBD by the full matrix-geometric method (Theorem 1):
    /// logarithmic reduction for `G`, then `R`, then the finite boundary
    /// system.
    ///
    /// # Errors
    ///
    /// * [`QbdError::Unstable`] if Neuts' drift condition fails.
    /// * [`QbdError::NoConvergence`] from the `G` computation.
    /// * [`QbdError::Linalg`] if the boundary system is singular.
    pub fn solve(&self, opts: &SolveOptions) -> Result<QbdStationary> {
        let (up, down) = self.drifts()?;
        if up >= down {
            return Err(QbdError::Unstable {
                up_drift: up,
                down_drift: down,
            });
        }
        let g = logarithmic_reduction(self, opts.g_tol, opts.g_max_iter)?;
        let r = rate_matrix(self, &g.g)?;
        let sol = self.solve_boundary(Tail::Matrix(r), opts)?;
        Ok(QbdStationary {
            g_iterations: g.iterations,
            ..sol
        })
    }

    /// Solves the QBD assuming the scalar geometric tail
    /// `π_{q+1} = β·π_q` (Theorems 2–3 of the paper; for the lower-bound
    /// model with Poisson arrivals `β = ρᴺ`).
    ///
    /// This skips the `G`/`R` computation entirely — the "dramatic"
    /// complexity reduction of Section IV-B.
    ///
    /// # Errors
    ///
    /// * [`QbdError::InvalidBlocks`] if `β ∉ (0, 1)`.
    /// * [`QbdError::Linalg`] if the boundary system is singular.
    pub fn solve_with_scalar_tail(&self, beta: f64, opts: &SolveOptions) -> Result<QbdStationary> {
        if !(0.0..1.0).contains(&beta) || beta == 0.0 {
            return Err(QbdError::InvalidBlocks {
                reason: format!("scalar tail β must lie in (0, 1), got {beta}"),
            });
        }
        self.solve_boundary(Tail::Scalar(beta), opts)
    }

    /// Builds and solves the finite system
    /// `(π_b, π_0, π_1)·M = 0`, `π_b e + π_0 e + π_1 w = 1`
    /// where the third block column of `M` is `A1 + R A2` (or
    /// `A1 + β A2`) and `w = (I−R)⁻¹ e` (or `e/(1−β)`).
    fn solve_boundary(&self, tail: Tail, opts: &SolveOptions) -> Result<QbdStationary> {
        let nb = self.boundary_len();
        let m = self.level_len();
        let k = nb + 2 * m;

        // Tail column `A1 + R·A2` (or `A1 + β·A2`) and the tail weight
        // `w = (I−R)⁻¹e` (or `e/(1−β)`), formed on the in-place kernel:
        // one scratch matrix, no expression-tree temporaries.
        let mut tail_block = Matrix::zeros(m, m);
        match &tail {
            Tail::Matrix(r) => {
                r.mul_into(self.a2(), &mut tail_block)?;
            }
            Tail::Scalar(b) => {
                tail_block.copy_from(self.a2());
                tail_block.scale_in_place(*b);
            }
        }
        tail_block += self.a1();
        let w = match &tail {
            Tail::Matrix(r) => {
                let mut i_minus_r = r.scale(-1.0);
                i_minus_r.add_assign_scaled_identity(1.0)?;
                i_minus_r.solve_vec(&vec![1.0; m])?
            }
            Tail::Scalar(b) => vec![1.0 / (1.0 - b); m],
        };

        // Assemble M (the finite balance system) through the shared
        // sparse builder: the system is block-tridiagonal, so the CSR
        // form both feeds the residual checks at O(nnz) and densifies
        // into exactly the matrix the LU boundary solve needs.
        let mut coo = CooBuilder::new(k, k);
        let ok = "balance block in range";
        coo.add_dense_block(0, 0, self.r00()).expect(ok);
        coo.add_dense_block(0, nb, self.r01()).expect(ok);
        coo.add_dense_block(nb, 0, self.r10()).expect(ok);
        coo.add_dense_block(nb, nb, self.a1()).expect(ok);
        coo.add_dense_block(nb, nb + m, self.a0()).expect(ok);
        coo.add_dense_block(nb + m, nb, self.a2()).expect(ok);
        coo.add_dense_block(nb + m, nb + m, &tail_block).expect(ok);
        let sparse = coo.build();
        let big = sparse.to_dense();

        // Normalization coefficients n = [e_b ; e_0 ; w].
        let mut norm = vec![1.0; k];
        norm[nb + m..].copy_from_slice(&w);

        // Fast path: replace balance equation 0 with the normalization and
        // solve the transposed square system.
        let pi = match solve_replacing_equation(&big, &norm) {
            Ok(pi) if residual_of(&sparse, &pi) <= opts.residual_tol => pi,
            _ => solve_least_squares(&big, &norm)?,
        };

        let res = residual_of(&sparse, &pi);
        if res > opts.residual_tol.max(1e-6) {
            return Err(QbdError::NoConvergence {
                method: "qbd_boundary_solve",
                iterations: 1,
                residual: res,
            });
        }

        let mut boundary = pi[..nb].to_vec();
        let mut level0 = pi[nb..nb + m].to_vec();
        let mut level1 = pi[nb + m..].to_vec();
        // Stationary vectors are nonnegative; clamp round-off only.
        vector::clamp_nonnegative(&mut boundary, 1e-8);
        vector::clamp_nonnegative(&mut level0, 1e-8);
        vector::clamp_nonnegative(&mut level1, 1e-8);

        Ok(QbdStationary {
            boundary,
            level0,
            level1,
            tail,
            residual: res,
            g_iterations: 0,
        })
    }
}

impl SparseQbdBlocks {
    /// Sparse twin of [`QbdBlocks::solve_with_scalar_tail`]: solves the
    /// QBD assuming the scalar geometric tail `π_{q+1} = β·π_q`
    /// (Theorems 2–3 of the paper; `β = ρᴺ` for the Poisson lower-bound
    /// model), with the finite balance system kept in CSR form and
    /// solved by Gauss–Seidel instead of LU.
    ///
    /// The assembled system and normalization are *identical* to the
    /// dense path — `(π_b, π_0, π_1)·M = 0` with tail column `A1 + β·A2`
    /// and weight `w = e/(1−β)` — so the two paths agree to solver
    /// tolerance wherever both run.
    ///
    /// # Errors
    ///
    /// * [`QbdError::InvalidBlocks`] if `β ∉ (0, 1)`.
    /// * [`QbdError::NoConvergence`] if Gauss–Seidel exhausts its sweep
    ///   cap, [`QbdError::Interrupted`] if the options' budget trips.
    ///
    /// # Examples
    ///
    /// M/M/1, where the scalar tail is exactly ρ:
    ///
    /// ```
    /// use slb_linalg::CsrMatrix;
    /// use slb_qbd::{SparseQbdBlocks, SparseSolveOptions};
    ///
    /// # fn main() -> Result<(), slb_qbd::QbdError> {
    /// let (lam, mu) = (0.5, 1.0);
    /// let one = |v: f64| CsrMatrix::from_triplets(1, 1, [(0, 0, v)]).unwrap();
    /// let blocks = SparseQbdBlocks::new(
    ///     one(-lam), one(lam), one(mu),
    ///     one(lam), one(-(lam + mu)), one(mu),
    /// )?;
    /// let sol = blocks.solve_scalar_tail(0.5, &SparseSolveOptions::default())?;
    /// // π_0 = 1 − ρ for the empty boundary state.
    /// assert!((sol.boundary()[0] - 0.5).abs() < 1e-10);
    /// assert!((sol.total_mass() - 1.0).abs() < 1e-10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve_scalar_tail(&self, beta: f64, opts: &SparseSolveOptions) -> Result<QbdStationary> {
        if !(0.0..1.0).contains(&beta) || beta == 0.0 {
            return Err(QbdError::InvalidBlocks {
                reason: format!("scalar tail β must lie in (0, 1), got {beta}"),
            });
        }
        let nb = self.boundary_len();
        let m = self.level_len();
        let k = nb + 2 * m;

        // Transpose of the finite balance system
        //   ⎡ R00  R01      0     ⎤
        //   ⎢ R10  A1      A0     ⎥
        //   ⎣  0   A2   A1 + β·A2 ⎦
        // assembled directly (blocks added with indices swapped).
        let mut coo = CooBuilder::new(k, k);
        add_csr_block_transposed(&mut coo, 0, 0, self.r00(), 1.0)?;
        add_csr_block_transposed(&mut coo, 0, nb, self.r01(), 1.0)?;
        add_csr_block_transposed(&mut coo, nb, 0, self.r10(), 1.0)?;
        add_csr_block_transposed(&mut coo, nb, nb, self.a1(), 1.0)?;
        add_csr_block_transposed(&mut coo, nb, nb + m, self.a0(), 1.0)?;
        add_csr_block_transposed(&mut coo, nb + m, nb, self.a2(), 1.0)?;
        add_csr_block_transposed(&mut coo, nb + m, nb + m, self.a1(), 1.0)?;
        add_csr_block_transposed(&mut coo, nb + m, nb + m, self.a2(), beta)?;
        let mt = coo.build();

        // Normalization coefficients [e_b ; e_0 ; w], w = e/(1−β).
        let mut norm = vec![1.0; k];
        for v in &mut norm[nb + m..] {
            *v = 1.0 / (1.0 - beta);
        }

        let gs = null_vector_gs_budgeted(&mt, &norm, opts.gs_tol, opts.gs_max_sweeps, &opts.budget)
            .map_err(QbdError::from)?;

        let mut boundary = gs.x[..nb].to_vec();
        let mut level0 = gs.x[nb..nb + m].to_vec();
        let mut level1 = gs.x[nb + m..].to_vec();
        vector::clamp_nonnegative(&mut boundary, 1e-8);
        vector::clamp_nonnegative(&mut level0, 1e-8);
        vector::clamp_nonnegative(&mut level1, 1e-8);

        Ok(QbdStationary {
            boundary,
            level0,
            level1,
            tail: Tail::Scalar(beta),
            residual: gs.residual,
            g_iterations: 0,
        })
    }
}

/// `‖π M‖∞` for the assembled finite system, via the shared sparse
/// transpose-matvec.
fn residual_of(big: &CsrMatrix, pi: &[f64]) -> f64 {
    vector::norm_inf(&big.vec_mat(pi))
}

/// Solve `π M = 0`, `π·n = 1` by replacing the first balance equation with
/// the normalization: `Mᵀ` with row 0 ← `n`, RHS `e_0`.
fn solve_replacing_equation(big: &Matrix, norm: &[f64]) -> Result<Vec<f64>> {
    let k = big.rows();
    let mut sys = big.transpose();
    for c in 0..k {
        sys[(0, c)] = norm[c];
    }
    let mut rhs = vec![0.0; k];
    rhs[0] = 1.0;
    Ok(sys.solve_vec(&rhs)?)
}

/// Solve the overdetermined `[Mᵀ ; nᵀ] π = [0 ; 1]` by normal equations —
/// slower but immune to a badly chosen replaced equation.
fn solve_least_squares(big: &Matrix, norm: &[f64]) -> Result<Vec<f64>> {
    let k = big.rows();
    // AᵀA = M Mᵀ + n nᵀ ;  Aᵀ b = n.
    let mmt = big.mat_mul(&big.transpose())?;
    let mut ata = mmt;
    for r in 0..k {
        for c in 0..k {
            ata[(r, c)] += norm[r] * norm[c];
        }
    }
    Ok(ata.solve_vec(norm)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1_blocks(lam: f64, mu: f64) -> QbdBlocks {
        QbdBlocks::new(
            Matrix::from_vec(1, 1, vec![-lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![-(lam + mu)]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn mm1_full_solution_geometric() {
        let rho = 0.6;
        let b = mm1_blocks(rho, 1.0);
        let sol = b.solve(&SolveOptions::default()).unwrap();
        // Boundary = state 0, level q = state q+1.
        assert!((sol.boundary()[0] - (1.0 - rho)).abs() < 1e-10);
        for q in 0..6 {
            let expect = (1.0 - rho) * rho.powi(q as i32 + 1);
            assert!(
                (sol.level_prob(q)[0] - expect).abs() < 1e-10,
                "level {q}: {} vs {expect}",
                sol.level_prob(q)[0]
            );
        }
        assert!((sol.total_mass() - 1.0).abs() < 1e-10);
        assert!(sol.residual() < 1e-10);
        assert!(sol.g_iterations() > 0);
    }

    #[test]
    fn mm1_scalar_tail_matches_full() {
        let rho = 0.6;
        let b = mm1_blocks(rho, 1.0);
        let full = b.solve(&SolveOptions::default()).unwrap();
        // For M/M/1, levels have a single state, so the tail scalar is ρ.
        let scalar = b
            .solve_with_scalar_tail(rho, &SolveOptions::default())
            .unwrap();
        assert!((full.boundary()[0] - scalar.boundary()[0]).abs() < 1e-10);
        assert!((full.level_prob(3)[0] - scalar.level_prob(3)[0]).abs() < 1e-10);
        assert_eq!(scalar.g_iterations(), 0);
    }

    #[test]
    fn mm1_mean_jobs_via_linear_cost() {
        let rho = 0.7;
        let b = mm1_blocks(rho, 1.0);
        let sol = b.solve(&SolveOptions::default()).unwrap();
        // Number of jobs: boundary state has 0; level q has q+1 jobs
        // (cost0 = 1, growth = 1).
        let el = sol.mean_linear_cost(&[0.0], &[1.0], &[1.0]);
        let exact = rho / (1.0 - rho);
        assert!((el - exact).abs() < 1e-9, "E[L] = {el} vs {exact}");
    }

    #[test]
    fn unstable_detected() {
        let b = mm1_blocks(1.2, 1.0);
        assert!(matches!(
            b.solve(&SolveOptions::default()),
            Err(QbdError::Unstable { .. })
        ));
    }

    #[test]
    fn scalar_tail_rejects_bad_beta() {
        let b = mm1_blocks(0.4, 1.0);
        assert!(b
            .solve_with_scalar_tail(1.0, &SolveOptions::default())
            .is_err());
        assert!(b
            .solve_with_scalar_tail(0.0, &SolveOptions::default())
            .is_err());
        assert!(b
            .solve_with_scalar_tail(-0.3, &SolveOptions::default())
            .is_err());
    }

    /// Two-phase QBD solved both matrix-geometrically and by brute-force
    /// truncation: the distributions must agree.
    #[test]
    fn two_phase_vs_truncation() {
        let (l0, l1, mu, r) = (0.3, 0.8, 1.0, 0.5);
        let a0 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
        let a2 = Matrix::from_rows(&[&[mu, 0.0], &[0.0, mu]]).unwrap();
        let a1 = Matrix::from_rows(&[&[-(l0 + mu + r), r], &[r, -(l1 + mu + r)]]).unwrap();
        let r00 = Matrix::from_rows(&[&[-(l0 + r), r], &[r, -(l1 + r)]]).unwrap();
        let r01 = a0.clone();
        let r10 = a2.clone();
        let b = QbdBlocks::new(r00, r01, r10, a0, a1, a2).unwrap();

        let sol = b.solve(&SolveOptions::default()).unwrap();
        assert!((sol.total_mass() - 1.0).abs() < 1e-9);

        // Brute force: truncate at 60 levels and GTH-solve.
        let q = b.truncated_generator(60);
        let pi = slb_markov::gth_stationary(&q).unwrap();
        for (i, (b, p)) in sol.boundary().iter().zip(&pi).enumerate() {
            assert!((b - p).abs() < 1e-8, "boundary {i}");
        }
        for qlvl in 0..5 {
            let lp = sol.level_prob(qlvl);
            for i in 0..2 {
                let truth = pi[2 + qlvl * 2 + i];
                assert!(
                    (lp[i] - truth).abs() < 1e-8,
                    "level {qlvl} phase {i}: {} vs {truth}",
                    lp[i]
                );
            }
        }
    }

    #[test]
    fn per_level_cost_matches_linear_closed_form() {
        let rho = 0.7;
        let b = mm1_blocks(rho, 1.0);
        let sol = b.solve(&SolveOptions::default()).unwrap();
        // Linear cost via both APIs must agree.
        let linear = sol.mean_linear_cost(&[0.0], &[1.0], &[1.0]);
        let general = sol.mean_cost_per_level(&[0.0], |q, _| q as f64 + 1.0, 1e-14);
        assert!((linear - general).abs() < 1e-9, "{linear} vs {general}");
    }

    #[test]
    fn per_level_cost_indicator() {
        // P(L >= 3) for M/M/1 = ρ³, via an indicator cost.
        let rho = 0.6;
        let b = mm1_blocks(rho, 1.0);
        let sol = b.solve(&SolveOptions::default()).unwrap();
        // Level q corresponds to L = q + 1 jobs.
        let p_ge3 =
            sol.mean_cost_per_level(&[0.0], |q, _| if q + 1 >= 3 { 1.0 } else { 0.0 }, 1e-14);
        assert!((p_ge3 - rho.powi(3)).abs() < 1e-9, "{p_ge3}");
    }

    #[test]
    fn for_each_level_reproduces_geometric_masses() {
        let rho = 0.7;
        let b = mm1_blocks(rho, 1.0);
        let sol = b.solve(&SolveOptions::default()).unwrap();
        let mut seen = Vec::new();
        sol.for_each_level(1e-12, |q, v| {
            assert_eq!(v.len(), 1);
            seen.push((q, v[0]));
        });
        // Levels are visited in order starting at 0 and match level_prob.
        for (i, &(q, p)) in seen.iter().enumerate() {
            assert_eq!(q, i);
            assert!((p - sol.level_prob(q)[0]).abs() < 1e-14);
        }
        // Coverage: boundary + visited levels ≈ 1.
        let covered: f64 = sol.boundary()[0] + seen.iter().map(|&(_, p)| p).sum::<f64>();
        assert!((covered - 1.0).abs() < 1e-10);
    }

    #[test]
    fn level_mass_decreases_geometrically() {
        let b = mm1_blocks(0.8, 1.0);
        let sol = b.solve(&SolveOptions::default()).unwrap();
        let m1 = sol.level_mass(1);
        let m2 = sol.level_mass(2);
        let m3 = sol.level_mass(3);
        assert!((m2 / m1 - 0.8).abs() < 1e-9);
        assert!((m3 / m2 - 0.8).abs() < 1e-9);
    }
}
