//! Validated QBD block container and the Neuts drift / stability test.

use slb_linalg::{CooBuilder, CsrMatrix, Matrix};
use slb_markov::gth_stationary;

use crate::{QbdError, Result};

/// Row sums of a generator must vanish to this absolute tolerance.
const ROW_SUM_TOL: f64 = 1e-9;

/// The six blocks of a level-independent QBD generator with one boundary
/// level (see the crate docs for the layout).
///
/// Invariants validated at construction:
///
/// * shape consistency: `R00: nb×nb`, `R01: nb×m`, `R10: m×nb`,
///   `A0, A1, A2: m×m`;
/// * nonnegative off-diagonal entries (`A1`, `R00` may have negative
///   diagonals only);
/// * vanishing row sums of each full generator row:
///   `R00·e + R01·e = 0`, `R10·e + A1·e + A0·e = 0`,
///   `A2·e + A1·e + A0·e = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct QbdBlocks {
    r00: Matrix,
    r01: Matrix,
    r10: Matrix,
    a0: Matrix,
    a1: Matrix,
    a2: Matrix,
}

impl QbdBlocks {
    /// Builds and validates the block container.
    ///
    /// # Errors
    ///
    /// [`QbdError::InvalidBlocks`] describing the first violated invariant.
    pub fn new(
        r00: Matrix,
        r01: Matrix,
        r10: Matrix,
        a0: Matrix,
        a1: Matrix,
        a2: Matrix,
    ) -> Result<Self> {
        let nb = r00.rows();
        let m = a1.rows();
        let shape_checks = [
            ("R00", r00.shape(), (nb, nb)),
            ("R01", r01.shape(), (nb, m)),
            ("R10", r10.shape(), (m, nb)),
            ("A0", a0.shape(), (m, m)),
            ("A1", a1.shape(), (m, m)),
            ("A2", a2.shape(), (m, m)),
        ];
        for (name, got, want) in shape_checks {
            if got != want {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("{name} has shape {got:?}, expected {want:?}"),
                });
            }
        }

        let off_diag_nonneg = |mat: &Matrix, name: &str, diag_ok: bool| -> Result<()> {
            for r in 0..mat.rows() {
                for c in 0..mat.cols() {
                    let v = mat[(r, c)];
                    if v < 0.0 && !(diag_ok && r == c) {
                        return Err(QbdError::InvalidBlocks {
                            reason: format!("{name} has negative off-diagonal {v} at ({r}, {c})"),
                        });
                    }
                }
            }
            Ok(())
        };
        off_diag_nonneg(&r00, "R00", true)?;
        off_diag_nonneg(&r01, "R01", false)?;
        off_diag_nonneg(&r10, "R10", false)?;
        off_diag_nonneg(&a0, "A0", false)?;
        off_diag_nonneg(&a1, "A1", true)?;
        off_diag_nonneg(&a2, "A2", false)?;

        for r in 0..nb {
            let s: f64 = r00.row(r).iter().sum::<f64>() + r01.row(r).iter().sum::<f64>();
            if s.abs() > ROW_SUM_TOL {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("boundary row {r} sums to {s}, expected 0"),
                });
            }
        }
        for r in 0..m {
            let s0: f64 = r10.row(r).iter().sum::<f64>()
                + a1.row(r).iter().sum::<f64>()
                + a0.row(r).iter().sum::<f64>();
            if s0.abs() > ROW_SUM_TOL {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("level-0 row {r} sums to {s0}, expected 0"),
                });
            }
            let si: f64 = a2.row(r).iter().sum::<f64>()
                + a1.row(r).iter().sum::<f64>()
                + a0.row(r).iter().sum::<f64>();
            if si.abs() > ROW_SUM_TOL {
                return Err(QbdError::InvalidBlocks {
                    reason: format!("repeating row {r} sums to {si}, expected 0"),
                });
            }
        }

        Ok(QbdBlocks {
            r00,
            r01,
            r10,
            a0,
            a1,
            a2,
        })
    }

    /// Number of boundary states.
    pub fn boundary_len(&self) -> usize {
        self.r00.rows()
    }

    /// Number of states per repeating level.
    pub fn level_len(&self) -> usize {
        self.a1.rows()
    }

    /// Boundary-internal block `R00`.
    pub fn r00(&self) -> &Matrix {
        &self.r00
    }

    /// Boundary → level-0 block `R01`.
    pub fn r01(&self) -> &Matrix {
        &self.r01
    }

    /// Level-0 → boundary block `R10`.
    pub fn r10(&self) -> &Matrix {
        &self.r10
    }

    /// Upward (level `q` → `q+1`) block `A0`.
    pub fn a0(&self) -> &Matrix {
        &self.a0
    }

    /// Local (level `q` → `q`) block `A1`.
    pub fn a1(&self) -> &Matrix {
        &self.a1
    }

    /// Downward (level `q` → `q−1`) block `A2`.
    pub fn a2(&self) -> &Matrix {
        &self.a2
    }

    /// The phase-process generator `A = A0 + A1 + A2` and its stationary
    /// vector, used by the drift condition.
    ///
    /// # Errors
    ///
    /// Propagates a GTH failure if `A` is reducible.
    pub fn phase_stationary(&self) -> Result<Vec<f64>> {
        let a = self.a0.add(&self.a1)?.add(&self.a2)?;
        Ok(gth_stationary(&a)?)
    }

    /// Mean drifts `(π A0 e, π A2 e)` of the level process under the phase
    /// stationary vector `π`.
    ///
    /// # Errors
    ///
    /// Propagates [`QbdBlocks::phase_stationary`] failures.
    pub fn drifts(&self) -> Result<(f64, f64)> {
        let pi = self.phase_stationary()?;
        let up: f64 = self.a0.vec_mat(&pi).iter().sum();
        let down: f64 = self.a2.vec_mat(&pi).iter().sum();
        Ok((up, down))
    }

    /// Neuts' stability criterion: positive recurrence iff
    /// `π A0 e < π A2 e`.
    ///
    /// # Errors
    ///
    /// Propagates [`QbdBlocks::drifts`] failures.
    pub fn is_stable(&self) -> Result<bool> {
        let (up, down) = self.drifts()?;
        Ok(up < down)
    }

    /// Assembles the explicit generator of the QBD truncated at
    /// `levels` repeating levels (the last level's upward block is folded
    /// into its diagonal so rows still sum to zero). Used by tests to
    /// compare against direct CTMC solves.
    ///
    /// Thin densification of [`QbdBlocks::truncated_generator_csr`]; use
    /// the CSR form directly for anything beyond a handful of levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn truncated_generator(&self, levels: usize) -> Matrix {
        self.truncated_generator_csr(levels).to_dense()
    }

    /// The truncated generator assembled directly into the shared
    /// [`CsrMatrix`] kernel. The block-tridiagonal structure means only
    /// `O(levels · m²)` entries exist out of `(nb + levels·m)²` dense
    /// slots, so this is the form the iterative stationary solvers in
    /// `slb-markov` should consume.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn truncated_generator_csr(&self, levels: usize) -> CsrMatrix {
        assert!(levels > 0, "need at least one repeating level");
        let nb = self.boundary_len();
        let m = self.level_len();
        let n = nb + levels * m;
        let mut q = CooBuilder::new(n, n);
        let ok = "block entry in range";
        q.add_dense_block(0, 0, &self.r00).expect(ok);
        q.add_dense_block(0, nb, &self.r01).expect(ok);
        q.add_dense_block(nb, 0, &self.r10).expect(ok);
        for l in 0..levels {
            let row = nb + l * m;
            q.add_dense_block(row, row, &self.a1).expect(ok);
            if l + 1 < levels {
                q.add_dense_block(row, row + m, &self.a0).expect(ok);
            } else {
                // Fold A0 into the diagonal block: redirect up-transitions
                // back to the same state (lost rate becomes a self-loop,
                // i.e. is simply removed from the generator).
                for r in 0..m {
                    let excess: f64 = self.a0.row(r).iter().sum();
                    q.add(row + r, row + r, excess).expect(ok);
                }
            }
            if l > 0 {
                q.add_dense_block(row, row - m, &self.a2).expect(ok);
            }
        }
        q.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1_blocks(lam: f64, mu: f64) -> QbdBlocks {
        QbdBlocks::new(
            Matrix::from_vec(1, 1, vec![-lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![-(lam + mu)]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn mm1_drift_and_stability() {
        let b = mm1_blocks(0.5, 1.0);
        let (up, down) = b.drifts().unwrap();
        assert!((up - 0.5).abs() < 1e-14);
        assert!((down - 1.0).abs() < 1e-14);
        assert!(b.is_stable().unwrap());

        let b = mm1_blocks(1.5, 1.0);
        assert!(!b.is_stable().unwrap());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let e = QbdBlocks::new(
            Matrix::zeros(2, 2),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
            Matrix::zeros(2, 2), // wrong: A1 must match A0
            Matrix::zeros(1, 1),
        );
        assert!(matches!(e, Err(QbdError::InvalidBlocks { .. })));
    }

    #[test]
    fn row_sum_violation_rejected() {
        let e = QbdBlocks::new(
            Matrix::from_vec(1, 1, vec![-1.0]).unwrap(),
            Matrix::from_vec(1, 1, vec![2.0]).unwrap(), // boundary row sums to 1
            Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
            Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
            Matrix::from_vec(1, 1, vec![-2.0]).unwrap(),
            Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
        );
        assert!(matches!(e, Err(QbdError::InvalidBlocks { .. })));
    }

    #[test]
    fn negative_rate_rejected() {
        let e = QbdBlocks::new(
            Matrix::from_vec(1, 1, vec![1.0]).unwrap(), // R00 diagonal may be negative, not positive? positive diagonal means positive row sum
            Matrix::from_vec(1, 1, vec![-1.0]).unwrap(), // negative off-diagonal block entry
            Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
            Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
            Matrix::from_vec(1, 1, vec![-2.0]).unwrap(),
            Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
        );
        assert!(matches!(e, Err(QbdError::InvalidBlocks { .. })));
    }

    #[test]
    fn truncated_generator_is_valid_ctmc() {
        let b = mm1_blocks(0.7, 1.0);
        let q = b.truncated_generator(5);
        assert_eq!(q.rows(), 6);
        for r in 0..q.rows() {
            let s: f64 = q.row(r).iter().sum();
            assert!(s.abs() < 1e-12, "row {r} sums to {s}");
        }
        // Truncated M/M/1 stationary ≈ geometric.
        let pi = slb_markov::gth_stationary(&q).unwrap();
        assert!(pi[0] > pi[1] && pi[1] > pi[2]);
    }

    #[test]
    fn csr_truncation_matches_dense() {
        let b = mm1_blocks(0.6, 1.0);
        let sparse = b.truncated_generator_csr(8);
        let dense = b.truncated_generator(8);
        assert!(sparse.to_dense().approx_eq(&dense, 0.0));
        // Block-tridiagonal: nnz far below the dense square.
        assert!(sparse.nnz() <= 3 * sparse.rows());
        for s in sparse.row_sums() {
            assert!(s.abs() < 1e-12);
        }
        // The shared iterative solver agrees with dense GTH on the
        // truncated chain.
        let pi_gth = slb_markov::gth_stationary(&dense).unwrap();
        let pi_csr = slb_markov::stationary_jacobi_csr(&sparse, 1e-13, 1_000_000).unwrap();
        for (a, b) in pi_gth.iter().zip(&pi_csr) {
            assert!((a - b).abs() < 1e-9, "{pi_gth:?} vs {pi_csr:?}");
        }
    }

    #[test]
    fn phase_stationary_of_mm1_is_unit() {
        let b = mm1_blocks(0.3, 1.0);
        let pi = b.phase_stationary().unwrap();
        assert_eq!(pi, vec![1.0]);
    }
}
