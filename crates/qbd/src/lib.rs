//! # slb-qbd
//!
//! Solver for level-independent **quasi-birth-death (QBD) processes** with
//! a finite boundary block — the matrix-geometric machinery of Neuts used
//! in Section IV of *Godtschalk & Ciucu, ICDCS 2016* to evaluate the
//! SQ(d) lower- and upper-bound models.
//!
//! A QBD here is a CTMC whose generator has the block-tridiagonal form
//!
//! ```text
//!     ⎡ R00  R01   0    0   … ⎤
//!     ⎢ R10  A1   A0    0   … ⎥
//! Q = ⎢  0   A2   A1   A0   … ⎥
//!     ⎢  0    0   A2   A1   … ⎥
//!     ⎣  …    …    …    …   … ⎦
//! ```
//!
//! with a boundary block of `nb` states and repeating levels of `m` states.
//! The crate provides:
//!
//! * [`QbdBlocks`] — validated container for `(R00, R01, R10, A0, A1, A2)`.
//! * [`logarithmic_reduction`] — the Latouche–Ramaswami algorithm for the
//!   first-passage matrix `G` (`A2 + A1·G + A0·G² = 0`), plus
//!   [`functional_iteration`] as a slow cross-check; both report iteration
//!   counts (the paper observes convergence "within k = 6").
//! * [`rate_matrix`] — `R = −A0 (A1 + A0 G)⁻¹` (`A0 + R·A1 + R²·A2 = 0`).
//! * [`QbdBlocks::is_stable`] — Neuts' mean-drift condition
//!   `π A0 e < π A2 e`.
//! * [`QbdStationary`] — the stationary distribution `(π_b, π_0, π_1)` with
//!   geometric tail `π_{q+1} = π_q R` (Theorem 1) or scalar tail
//!   `π_{q+1} = β π_q` (Theorems 2–3), and linear-cost expectations over
//!   the infinite state space.
//!
//! ## Example: M/M/1 as the trivial QBD
//!
//! ```
//! use slb_linalg::Matrix;
//! use slb_qbd::{QbdBlocks, SolveOptions};
//!
//! # fn main() -> Result<(), slb_qbd::QbdError> {
//! let (lam, mu) = (0.6, 1.0);
//! let blocks = QbdBlocks::new(
//!     Matrix::from_vec(1, 1, vec![-lam]).unwrap(),        // R00
//!     Matrix::from_vec(1, 1, vec![lam]).unwrap(),         // R01
//!     Matrix::from_vec(1, 1, vec![mu]).unwrap(),          // R10
//!     Matrix::from_vec(1, 1, vec![lam]).unwrap(),         // A0
//!     Matrix::from_vec(1, 1, vec![-(lam + mu)]).unwrap(), // A1
//!     Matrix::from_vec(1, 1, vec![mu]).unwrap(),          // A2
//! )?;
//! let sol = blocks.solve(&SolveOptions::default())?;
//! // Geometric queue: π_q = (1 − ρ) ρ^q for levels q ≥ 0 beyond boundary.
//! let rho: f64 = lam / mu;
//! assert!((sol.level_prob(0)[0] - (1.0 - rho) * rho).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod cr;
mod error;
mod logred;
mod lumped;
pub mod models;
mod stationary;

pub use blocks::QbdBlocks;
pub use cr::{cyclic_reduction, decay_rate, u_based_iteration};
pub use error::QbdError;
pub use logred::{
    decay_rate_sparse, decay_rate_sparse_budgeted, functional_iteration,
    functional_iteration_budgeted, logarithmic_reduction, logarithmic_reduction_in,
    logarithmic_reduction_in_budgeted, rate_matrix, GComputation,
};
pub use lumped::{SparseQbdBlocks, SparseSolveOptions, TruncatedStationary};
pub use stationary::{QbdStationary, SolveOptions, Tail};

/// Convenience result alias for fallible QBD operations.
pub type Result<T> = std::result::Result<T, QbdError>;
