//! Ready-made QBD block constructions for classical queues.
//!
//! These serve two purposes: convenient entry points for users analyzing
//! MAP/M/1-type queues, and cross-layer validation targets — the
//! simulator's MAP arrivals are checked against these exact solutions.

use slb_linalg::Matrix;
use slb_markov::Map;

use crate::{QbdBlocks, Result};

/// QBD blocks of the MAP/M/1 queue: arrivals from `map`, a single
/// exponential server of rate `mu`, level = number of jobs.
///
/// Layout: boundary = empty system (one state per phase);
/// `A0 = D1`, `A1 = D0 − µI`, `A2 = µI`.
///
/// # Errors
///
/// Propagates block validation failures (impossible for a valid `Map` and
/// `mu > 0`).
///
/// # Panics
///
/// Panics if `mu <= 0`.
///
/// # Example
///
/// ```
/// use slb_markov::Map;
/// use slb_qbd::{models, SolveOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Poisson MAP reduces MAP/M/1 to M/M/1: P(L = 0) = 1 − ρ.
/// let map = Map::poisson(0.4)?;
/// let blocks = models::map_m1_blocks(&map, 1.0)?;
/// let sol = blocks.solve(&SolveOptions::default())?;
/// assert!((sol.boundary()[0] - 0.6).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn map_m1_blocks(map: &Map, mu: f64) -> Result<QbdBlocks> {
    assert!(mu > 0.0 && mu.is_finite(), "service rate must be positive");
    let p = map.phases();
    let eye_mu = Matrix::from_diag(&vec![mu; p]);
    let a0 = map.d1().clone();
    let a1 = map.d0().add_scaled_identity(-mu)?;
    let a2 = eye_mu.clone();
    let r00 = map.d0().clone();
    let r01 = map.d1().clone();
    let r10 = eye_mu;
    QbdBlocks::new(r00, r01, r10, a0, a1, a2)
}

/// Mean number of jobs in a MAP/M/1 queue (levels weighted by job count).
///
/// # Errors
///
/// [`crate::QbdError::Unstable`] if `λ ≥ µ`; solver failures otherwise.
///
/// # Panics
///
/// Panics if `mu <= 0`.
pub fn map_m1_mean_jobs(map: &Map, mu: f64) -> Result<f64> {
    let blocks = map_m1_blocks(map, mu)?;
    let sol = blocks.solve(&crate::SolveOptions::default())?;
    let p = map.phases();
    // Boundary = 0 jobs; repeating level q = q + 1 jobs.
    Ok(sol.mean_linear_cost(&vec![0.0; p], &vec![1.0; p], &vec![1.0; p]))
}

/// Mean sojourn time of a MAP/M/1 queue via Little's law.
///
/// # Errors
///
/// As [`map_m1_mean_jobs`], plus rate-computation failures.
///
/// # Panics
///
/// Panics if `mu <= 0`.
pub fn map_m1_mean_sojourn(map: &Map, mu: f64) -> Result<f64> {
    let jobs = map_m1_mean_jobs(map, mu)?;
    let lam = map.rate().map_err(crate::QbdError::from)?;
    Ok(jobs / lam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveOptions;

    #[test]
    fn poisson_map_m1_is_mm1() {
        let rho = 0.7;
        let map = Map::poisson(rho).unwrap();
        let jobs = map_m1_mean_jobs(&map, 1.0).unwrap();
        assert!((jobs - rho / (1.0 - rho)).abs() < 1e-9, "E[L] = {jobs}");
        let sojourn = map_m1_mean_sojourn(&map, 1.0).unwrap();
        assert!((sojourn - 1.0 / (1.0 - rho)).abs() < 1e-9);
    }

    #[test]
    fn mmpp_m1_burstier_than_mm1_at_equal_rate() {
        // Same fundamental rate, bursty modulation ⇒ longer queues.
        let map = Map::mmpp2(0.2, 0.2, 0.2, 1.2).unwrap();
        let lam = map.rate().unwrap();
        let mmpp_jobs = map_m1_mean_jobs(&map, 1.0).unwrap();
        let mm1_jobs = lam / (1.0 - lam);
        assert!(
            mmpp_jobs > 1.2 * mm1_jobs,
            "MMPP {mmpp_jobs} vs M/M/1 {mm1_jobs}"
        );
    }

    #[test]
    fn unstable_map_m1_detected() {
        let map = Map::poisson(1.5).unwrap();
        assert!(matches!(
            map_m1_mean_jobs(&map, 1.0),
            Err(crate::QbdError::Unstable { .. })
        ));
    }

    #[test]
    fn solution_is_distribution() {
        let map = Map::mmpp2(0.4, 0.6, 0.3, 1.1).unwrap();
        let blocks = map_m1_blocks(&map, 1.0).unwrap();
        let sol = blocks.solve(&SolveOptions::default()).unwrap();
        assert!((sol.total_mass() - 1.0).abs() < 1e-9);
        assert!(sol.residual() < 1e-9);
    }
}
