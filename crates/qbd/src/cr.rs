//! Alternative `G`-matrix algorithms: cyclic reduction and the U-based
//! fixed point.
//!
//! The paper uses logarithmic reduction (Latouche–Ramaswami 1993); the
//! structured-Markov-chain literature offers several competitors with
//! different constant factors and convergence orders. Implementing them
//! side by side turns the paper's algorithm choice into a measured
//! ablation (see `slb-bench`'s `logred` bench) instead of an appeal to
//! authority:
//!
//! * [`cyclic_reduction`] — Bini–Meini. Quadratically convergent like
//!   logarithmic reduction, with a slightly different per-iteration cost
//!   profile (one LU per iteration, six products vs. logred's one LU and
//!   five products).
//! * [`u_based_iteration`] — the fixed point `G ← (−(A1 + A0·G))⁻¹ A2`.
//!   Linearly convergent but markedly faster than the natural iteration
//!   (`slb_qbd::functional_iteration`) because the local block is
//!   re-solved with the current `G` folded in.
//!
//! All algorithms return the same minimal nonnegative solution of
//! `A2 + A1·G + A0·G² = 0`; the unit tests pin them against each other
//! and against closed forms.

use slb_linalg::{Lu, Matrix, Workspace};

use crate::logred::{g_residual, GComputation};
use crate::{QbdBlocks, QbdError, Result};

/// Uniformization constant: strictly dominates every diagonal rate so the
/// discretized local block `I + A1/u` stays substochastic with a strictly
/// positive diagonal.
fn uniformization_rate(a1: &Matrix) -> f64 {
    let mut u = 0.0_f64;
    for i in 0..a1.rows() {
        u = u.max(-a1[(i, i)]);
    }
    u * (1.0 + 1e-9) + 1e-12
}

/// Computes `G` by cyclic reduction (Bini–Meini).
///
/// The generator blocks are first uniformized into the DTMC blocks
/// `(B₋ , B₀, B₊) = (A2/u, I + A1/u, A0/u)` — a transformation that
/// preserves `G` exactly — and the classical CR recurrence is applied:
///
/// ```text
/// S  = (I − B₀⁽ᵏ⁾)⁻¹
/// B₀⁽ᵏ⁺¹⁾ = B₀⁽ᵏ⁾ + B₊⁽ᵏ⁾·S·B₋⁽ᵏ⁾ + B₋⁽ᵏ⁾·S·B₊⁽ᵏ⁾
/// B₊⁽ᵏ⁺¹⁾ = B₊⁽ᵏ⁾·S·B₊⁽ᵏ⁾ ,  B₋⁽ᵏ⁺¹⁾ = B₋⁽ᵏ⁾·S·B₋⁽ᵏ⁾
/// B̂₀⁽ᵏ⁺¹⁾ = B̂₀⁽ᵏ⁾ + B₊⁽ᵏ⁾·S·B₋⁽ᵏ⁾
/// G = (I − B̂₀⁽∞⁾)⁻¹ B₋⁽⁰⁾
/// ```
///
/// Convergence is quadratic; iteration stops when the `G` update falls
/// below `tol` in infinity norm.
///
/// # Errors
///
/// * [`QbdError::NoConvergence`] if `max_iter` is exhausted.
/// * [`QbdError::Linalg`] if an inner solve fails.
///
/// # Example
///
/// ```
/// use slb_linalg::Matrix;
/// use slb_qbd::{cyclic_reduction, QbdBlocks};
///
/// # fn main() -> Result<(), slb_qbd::QbdError> {
/// // M/M/1, λ = 0.5, µ = 1: G = [1].
/// let b = QbdBlocks::new(
///     Matrix::from_vec(1, 1, vec![-0.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
///     Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![-1.5]).unwrap(),
///     Matrix::from_vec(1, 1, vec![1.0]).unwrap(),
/// )?;
/// let g = cyclic_reduction(&b, 1e-13, 64)?;
/// assert!((g.g[(0, 0)] - 1.0).abs() < 1e-11);
/// # Ok(())
/// # }
/// ```
pub fn cyclic_reduction(blocks: &QbdBlocks, tol: f64, max_iter: usize) -> Result<GComputation> {
    let m = blocks.level_len();
    let mut ws = Workspace::square(m);
    let ok = "cyclic_reduction: all QBD blocks share one square shape";
    let u = uniformization_rate(blocks.a1());

    // Setup (the only allocating phase): uniformized DTMC blocks and two
    // LU factorizations whose storage the loop refactors in place.
    let mut b_minus0 = ws.take();
    b_minus0.copy_from(blocks.a2());
    b_minus0.scale_in_place(1.0 / u);
    let mut b_minus = ws.take();
    b_minus.copy_from(&b_minus0);
    let mut b_plus = ws.take();
    b_plus.copy_from(blocks.a0());
    b_plus.scale_in_place(1.0 / u);
    let mut b0 = ws.take();
    b0.copy_from(blocks.a1());
    b0.scale_in_place(1.0 / u);
    b0.add_assign_scaled_identity(1.0).expect(ok);
    let mut b0_hat = ws.take();
    b0_hat.copy_from(&b0);

    let eye = Matrix::identity(m);
    let mut lu = Lu::new(&eye)?; // placeholder factorization, refactored below
    let mut lu_hat = lu.clone();

    let mut g_prev = ws.take();
    g_prev.fill(0.0);
    // Per-iteration scratch, reused every round: the loop below performs
    // zero heap allocation (pinned by `tests/alloc_free.rs`).
    let mut g = ws.take();
    let mut s_minus = ws.take();
    let mut s_plus = ws.take();
    let mut up_down = ws.take();
    let mut down_up = ws.take();
    let mut tmp = ws.take();

    for it in 1..=max_iter {
        // tmp = I − B₀, factorized into reused LU storage.
        tmp.copy_from(&b0);
        tmp.scale_in_place(-1.0);
        tmp.add_assign_scaled_identity(1.0).expect(ok);
        lu.refactor(&tmp)?;
        lu.solve_mat_into(&b_minus, &mut s_minus).expect(ok); // S·B₋
        lu.solve_mat_into(&b_plus, &mut s_plus).expect(ok); // S·B₊

        b_plus.mul_into(&s_minus, &mut up_down).expect(ok);
        b_minus.mul_into(&s_plus, &mut down_up).expect(ok);
        b0_hat += &up_down;
        b0 += &up_down;
        b0 += &down_up;
        b_plus.mul_into(&s_plus, &mut tmp).expect(ok);
        std::mem::swap(&mut b_plus, &mut tmp);
        b_minus.mul_into(&s_minus, &mut tmp).expect(ok);
        std::mem::swap(&mut b_minus, &mut tmp);

        // Current G estimate from the accumulated hat block.
        tmp.copy_from(&b0_hat);
        tmp.scale_in_place(-1.0);
        tmp.add_assign_scaled_identity(1.0).expect(ok); // I − B̂₀
        lu_hat.refactor(&tmp)?;
        lu_hat.solve_mat_into(&b_minus0, &mut g).expect(ok);
        let delta = g.norm_inf_diff(&g_prev);
        std::mem::swap(&mut g_prev, &mut g);
        if delta < tol {
            // Retire the loop scratch into the pool; g_residual recycles
            // it instead of allocating.
            ws.put(g);
            ws.put(s_minus);
            ws.put(s_plus);
            ws.put(up_down);
            ws.put(down_up);
            ws.put(tmp);
            return Ok(GComputation {
                residual: g_residual(blocks, &g_prev, &mut ws),
                g: g_prev,
                iterations: it,
            });
        }
    }
    ws.put(g);
    ws.put(s_minus);
    ws.put(s_plus);
    ws.put(up_down);
    ws.put(down_up);
    ws.put(tmp);
    Err(QbdError::NoConvergence {
        method: "cyclic_reduction",
        iterations: max_iter,
        residual: g_residual(blocks, &g_prev, &mut ws),
    })
}

/// Computes `G` by the U-based fixed point
/// `G ← (−(A1 + A0·G))⁻¹ A2`, starting from `G = 0`.
///
/// Each step folds the current `G` into the local block (the matrix
/// `U = A1 + A0·G` generates the process restricted to "up-excursions
/// resolved"), giving a substantially better linear rate than the natural
/// iteration at the cost of one LU factorization per step.
///
/// # Errors
///
/// * [`QbdError::NoConvergence`] if `max_iter` is exhausted.
/// * [`QbdError::Linalg`] if `A1 + A0·G` becomes singular (invalid QBD).
pub fn u_based_iteration(blocks: &QbdBlocks, tol: f64, max_iter: usize) -> Result<GComputation> {
    let m = blocks.level_len();
    let mut ws = Workspace::square(m);
    let ok = "u_based_iteration: all QBD blocks share one square shape";
    let mut g = ws.take();
    g.fill(0.0);
    let mut lu = Lu::new(&Matrix::identity(m))?; // refactored every round
                                                 // Per-iteration scratch; the loop allocates nothing.
    let mut u = ws.take();
    let mut next = ws.take();
    for it in 1..=max_iter {
        blocks.a0().mul_into(&g, &mut u).expect(ok); // A0·G
        u += blocks.a1(); // U = A1 + A0·G
        u.scale_in_place(-1.0);
        lu.refactor(&u)?;
        lu.solve_mat_into(blocks.a2(), &mut next).expect(ok);
        let delta = next.norm_inf_diff(&g);
        std::mem::swap(&mut g, &mut next);
        if delta < tol {
            // Retire the loop scratch; g_residual recycles it.
            ws.put(u);
            ws.put(next);
            return Ok(GComputation {
                residual: g_residual(blocks, &g, &mut ws),
                g,
                iterations: it,
            });
        }
    }
    ws.put(u);
    ws.put(next);
    Err(QbdError::NoConvergence {
        method: "u_based_iteration",
        iterations: max_iter,
        residual: g_residual(blocks, &g, &mut ws),
    })
}

/// The tail decay rate `η = sp(R)` of a stable QBD (the "caudal
/// characteristic"): `π_{q+1} ≈ η·π_q` deep in the tail. Computed by
/// solving for `G`, forming `R`, and power-iterating.
///
/// # Errors
///
/// Propagates `G`/`R` computation failures; [`QbdError::Unstable`] is
/// *not* raised here — for an unstable QBD the returned value simply
/// reaches 1 or beyond, which callers can test.
pub fn decay_rate(blocks: &QbdBlocks, tol: f64, max_iter: usize) -> Result<f64> {
    let g = crate::logarithmic_reduction(blocks, tol, max_iter)?;
    let r = crate::rate_matrix(blocks, &g.g)?;
    // R inherits the sparsity of A0 (zero rows for phases that cannot
    // move up); iterate on the shared CSR kernel.
    let r = slb_linalg::CsrMatrix::from_dense(&r, 0.0);
    let p = slb_linalg::power_iteration_sparse(&r, 1e-13, 100_000).map_err(QbdError::from)?;
    Ok(p.eigenvalue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{functional_iteration, logarithmic_reduction};

    fn mm1_blocks(lam: f64, mu: f64) -> QbdBlocks {
        QbdBlocks::new(
            Matrix::from_vec(1, 1, vec![-lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
            Matrix::from_vec(1, 1, vec![lam]).unwrap(),
            Matrix::from_vec(1, 1, vec![-(lam + mu)]).unwrap(),
            Matrix::from_vec(1, 1, vec![mu]).unwrap(),
        )
        .unwrap()
    }

    fn two_phase_blocks(l0: f64, l1: f64, mu: f64, r: f64) -> QbdBlocks {
        let a0 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
        let a2 = Matrix::from_rows(&[&[mu, 0.0], &[0.0, mu]]).unwrap();
        let a1 = Matrix::from_rows(&[&[-(l0 + mu + r), r], &[r, -(l1 + mu + r)]]).unwrap();
        let r00 = Matrix::from_rows(&[&[-(l0 + r), r], &[r, -(l1 + r)]]).unwrap();
        let r01 = a0.clone();
        let r10 = a2.clone();
        QbdBlocks::new(r00, r01, r10, a0, a1, a2).unwrap()
    }

    #[test]
    fn cr_mm1_g_is_one() {
        let b = mm1_blocks(0.6, 1.0);
        let g = cyclic_reduction(&b, 1e-13, 64).unwrap();
        assert!((g.g[(0, 0)] - 1.0).abs() < 1e-11, "G = {:?}", g.g);
        assert!(g.residual < 1e-10);
    }

    #[test]
    fn all_four_algorithms_agree() {
        for &(l0, l1, mu, r) in &[
            (0.4f64, 1.2f64, 1.0f64, 0.3f64),
            (0.8, 0.2, 1.0, 0.6),
            (0.85, 0.95, 1.0, 0.1),
        ] {
            let b = two_phase_blocks(l0, l1, mu, r);
            let lr = logarithmic_reduction(&b, 1e-14, 64).unwrap();
            let cr = cyclic_reduction(&b, 1e-13, 64).unwrap();
            let ub = u_based_iteration(&b, 1e-13, 100_000).unwrap();
            let fi = functional_iteration(&b, 1e-13, 500_000).unwrap();
            assert!(lr.g.approx_eq(&cr.g, 1e-9), "CR mismatch at ({l0}, {l1})");
            assert!(lr.g.approx_eq(&ub.g, 1e-8), "U-based mismatch");
            assert!(lr.g.approx_eq(&fi.g, 1e-8), "functional mismatch");
        }
    }

    #[test]
    fn convergence_order_ranking() {
        // Quadratic methods take O(log) iterations; U-based beats the
        // natural fixed point; both linear methods need far more.
        let b = two_phase_blocks(0.9, 0.95, 1.0, 0.2);
        let lr = logarithmic_reduction(&b, 1e-13, 64).unwrap();
        let cr = cyclic_reduction(&b, 1e-13, 64).unwrap();
        let ub = u_based_iteration(&b, 1e-13, 100_000).unwrap();
        let fi = functional_iteration(&b, 1e-13, 500_000).unwrap();
        assert!(lr.iterations <= 12 && cr.iterations <= 12);
        assert!(
            ub.iterations < fi.iterations,
            "{} < {}",
            ub.iterations,
            fi.iterations
        );
        assert!(cr.iterations < ub.iterations);
    }

    #[test]
    fn cr_transient_case_substochastic() {
        let b = mm1_blocks(2.0, 1.0);
        let g = cyclic_reduction(&b, 1e-13, 64).unwrap();
        assert!((g.g[(0, 0)] - 0.5).abs() < 1e-9, "G = {:?}", g.g);
    }

    #[test]
    fn decay_rate_mm1_is_rho() {
        let b = mm1_blocks(0.7, 1.0);
        let eta = decay_rate(&b, 1e-14, 64).unwrap();
        assert!((eta - 0.7).abs() < 1e-10, "η = {eta}");
    }

    #[test]
    fn decay_rate_two_phase_in_unit_interval() {
        let b = two_phase_blocks(0.5, 1.1, 1.0, 0.3);
        assert!(b.is_stable().unwrap());
        let eta = decay_rate(&b, 1e-14, 64).unwrap();
        assert!(eta > 0.0 && eta < 1.0, "η = {eta}");
        // Heavier load ⇒ slower decay.
        let heavy = two_phase_blocks(0.8, 1.15, 1.0, 0.3);
        let eta_heavy = decay_rate(&heavy, 1e-14, 64).unwrap();
        assert!(eta_heavy > eta);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let b = two_phase_blocks(0.9, 0.99, 1.0, 0.1);
        assert!(matches!(
            cyclic_reduction(&b, 1e-16, 1),
            Err(QbdError::NoConvergence { iterations: 1, .. })
        ));
        assert!(matches!(
            u_based_iteration(&b, 1e-16, 2),
            Err(QbdError::NoConvergence { iterations: 2, .. })
        ));
    }
}
