//! Bit-identity of the workspace-based QBD iterations against textbook
//! reference implementations written on the allocating operator
//! overloads.
//!
//! The production loops in `logred.rs`/`cr.rs` were rewritten onto the
//! in-place kernel; these references are the pre-rewrite formulations.
//! Because the kernel evaluates the same floating-point operations in the
//! same order, `G`, `R` and the iteration counts must agree **exactly**,
//! not just within tolerance.

use slb_linalg::{Lu, Matrix};
use slb_qbd::{cyclic_reduction, logarithmic_reduction, rate_matrix, QbdBlocks};

fn two_phase_blocks(l0: f64, l1: f64, mu: f64, r: f64) -> QbdBlocks {
    let a0 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
    let a2 = Matrix::from_rows(&[&[mu, 0.0], &[0.0, mu]]).unwrap();
    let a1 = Matrix::from_rows(&[&[-(l0 + mu + r), r], &[r, -(l1 + mu + r)]]).unwrap();
    let r00 = Matrix::from_rows(&[&[-(l0 + r), r], &[r, -(l1 + r)]]).unwrap();
    QbdBlocks::new(r00, a0.clone(), a2.clone(), a0, a1, a2).unwrap()
}

/// A larger (4-phase) QBD so the kernels run past their blocked-loop
/// tails.
fn four_phase_blocks() -> QbdBlocks {
    let m = 4;
    let lam = |i: usize| 0.3 + 0.15 * i as f64;
    let sw = 0.25;
    let a0 = Matrix::from_fn(m, m, |i, j| if i == j { lam(i) } else { 0.0 });
    let a2 = Matrix::from_fn(m, m, |i, j| if i == j { 1.0 } else { 0.0 });
    let ring = |i: usize, j: usize| {
        if j == (i + 1) % m || i == (j + 1) % m {
            sw
        } else {
            0.0
        }
    };
    let out = |i: usize| (0..m).map(|j| ring(i, j)).sum::<f64>();
    let a1 = Matrix::from_fn(m, m, |i, j| {
        if i == j {
            -(lam(i) + 1.0 + out(i))
        } else {
            ring(i, j)
        }
    });
    let r00 = Matrix::from_fn(m, m, |i, j| {
        if i == j {
            -(lam(i) + out(i))
        } else {
            ring(i, j)
        }
    });
    QbdBlocks::new(r00, a0.clone(), a2.clone(), a0, a1, a2).unwrap()
}

/// Reference logarithmic reduction: the Latouche–Ramaswami recurrence
/// written on operator overloads, allocating every temporary.
fn logred_reference(blocks: &QbdBlocks, tol: f64, max_iter: usize) -> (Matrix, usize) {
    let m = blocks.a1().rows();
    let neg_a1 = -blocks.a1();
    let lu = Lu::new(&neg_a1).unwrap();
    let mut h = lu.solve_mat(blocks.a0()).unwrap();
    let mut l = lu.solve_mat(blocks.a2()).unwrap();
    let mut g = l.clone();
    let mut t = h.clone();
    let eye = Matrix::identity(m);
    for it in 1..=max_iter {
        let u = &(&h * &l) + &(&l * &h);
        let i_minus_u = &eye - &u;
        let lu_u = Lu::new(&i_minus_u).unwrap();
        let h2 = &h * &h;
        let l2 = &l * &l;
        h = lu_u.solve_mat(&h2).unwrap();
        l = lu_u.solve_mat(&l2).unwrap();
        let add = &t * &l;
        let delta = add.norm_inf();
        g = &g + &add;
        t = &t * &h;
        if delta < tol {
            return (g, it);
        }
    }
    panic!("reference logred failed to converge");
}

/// Reference cyclic reduction (Bini–Meini) on operator overloads.
fn cr_reference(blocks: &QbdBlocks, tol: f64, max_iter: usize) -> (Matrix, usize) {
    let m = blocks.a1().rows();
    let eye = Matrix::identity(m);
    let mut u = 0.0_f64;
    for i in 0..m {
        u = u.max(-blocks.a1()[(i, i)]);
    }
    let u = u * (1.0 + 1e-9) + 1e-12;
    let b_minus0 = blocks.a2().scale(1.0 / u);
    let mut b_minus = b_minus0.clone();
    let mut b_plus = blocks.a0().scale(1.0 / u);
    let mut b0 = blocks.a1().scale(1.0 / u).add(&eye).unwrap();
    let mut b0_hat = b0.clone();
    let mut g_prev = Matrix::zeros(m, m);
    for it in 1..=max_iter {
        let i_minus_b0 = &eye - &b0;
        let lu = Lu::new(&i_minus_b0).unwrap();
        let s_minus = lu.solve_mat(&b_minus).unwrap();
        let s_plus = lu.solve_mat(&b_plus).unwrap();
        let up_down = &b_plus * &s_minus;
        let down_up = &b_minus * &s_plus;
        b0_hat = &b0_hat + &up_down;
        b0 = &(&b0 + &up_down) + &down_up;
        b_plus = &b_plus * &s_plus;
        b_minus = &b_minus * &s_minus;
        let i_minus_hat = &eye - &b0_hat;
        let g = Lu::new(&i_minus_hat).unwrap().solve_mat(&b_minus0).unwrap();
        let delta = (&g - &g_prev).norm_inf();
        g_prev = g;
        if delta < tol {
            return (g_prev, it);
        }
    }
    panic!("reference CR failed to converge");
}

/// Reference rate matrix `R = −A0 (A1 + A0·G)⁻¹` on operator overloads.
fn rate_matrix_reference(blocks: &QbdBlocks, g: &Matrix) -> Matrix {
    let inner = blocks.a1().add(&blocks.a0().mat_mul(g).unwrap()).unwrap();
    let neg_a0 = -blocks.a0();
    let lu = Lu::new(&inner.transpose()).unwrap();
    let rt = lu.solve_mat(&neg_a0.transpose()).unwrap();
    rt.transpose()
}

#[test]
fn logred_bit_identical_to_reference() {
    for blocks in [
        two_phase_blocks(0.4, 1.2, 1.0, 0.3),
        two_phase_blocks(0.85, 0.95, 1.0, 0.1),
        four_phase_blocks(),
    ] {
        let (g_ref, it_ref) = logred_reference(&blocks, 1e-13, 64);
        let got = logarithmic_reduction(&blocks, 1e-13, 64).unwrap();
        assert_eq!(got.iterations, it_ref);
        assert_eq!(got.g, g_ref);
    }
}

#[test]
fn cr_bit_identical_to_reference() {
    for blocks in [
        two_phase_blocks(0.4, 1.2, 1.0, 0.3),
        two_phase_blocks(0.8, 0.2, 1.0, 0.6),
        four_phase_blocks(),
    ] {
        let (g_ref, it_ref) = cr_reference(&blocks, 1e-12, 64);
        let got = cyclic_reduction(&blocks, 1e-12, 64).unwrap();
        assert_eq!(got.iterations, it_ref);
        assert_eq!(got.g, g_ref);
    }
}

#[test]
fn rate_matrix_bit_identical_to_reference() {
    for blocks in [two_phase_blocks(0.5, 1.1, 1.0, 0.3), four_phase_blocks()] {
        let g = logarithmic_reduction(&blocks, 1e-13, 64).unwrap();
        let r_ref = rate_matrix_reference(&blocks, &g.g);
        let r = rate_matrix(&blocks, &g.g).unwrap();
        assert_eq!(r, r_ref);
    }
}
