//! Proof that the G-matrix iteration loops perform **zero heap
//! allocation after setup**, via a counting global allocator.
//!
//! Method: run each algorithm with `tol = 0` (so it never converges and
//! performs exactly `max_iter` iterations before reporting
//! `NoConvergence`) and compare the total allocation counts for small and
//! large `max_iter`. Setup and the error path allocate a fixed number of
//! times; if the loop body allocated anything, the counts would differ by
//! a multiple of the iteration gap.
//!
//! This file contains a single `#[test]` on purpose: the libtest harness
//! runs tests of one binary concurrently, which would make a process-wide
//! allocation counter meaningless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use slb_linalg::Matrix;
use slb_qbd::{
    cyclic_reduction, functional_iteration, logarithmic_reduction, u_based_iteration, QbdBlocks,
    QbdError,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

fn blocks() -> QbdBlocks {
    let (l0, l1, mu, r) = (0.6, 1.1, 1.0, 0.4);
    let a0 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
    let a2 = Matrix::from_rows(&[&[mu, 0.0], &[0.0, mu]]).unwrap();
    let a1 = Matrix::from_rows(&[&[-(l0 + mu + r), r], &[r, -(l1 + mu + r)]]).unwrap();
    let r00 = Matrix::from_rows(&[&[-(l0 + r), r], &[r, -(l1 + r)]]).unwrap();
    QbdBlocks::new(r00, a0.clone(), a2.clone(), a0, a1, a2).unwrap()
}

#[test]
fn iteration_loops_allocate_nothing_after_setup() {
    let b = blocks();
    type Algo = fn(&QbdBlocks, f64, usize) -> Result<slb_qbd::GComputation, QbdError>;
    let algos: [(&str, Algo); 4] = [
        ("logarithmic_reduction", logarithmic_reduction),
        ("cyclic_reduction", cyclic_reduction),
        ("u_based_iteration", u_based_iteration),
        ("functional_iteration", functional_iteration),
    ];
    for (name, algo) in algos {
        // Warm up allocator-internal lazy state.
        let _ = algo(&b, 0.0, 2);
        let few = allocations_during(|| {
            assert!(matches!(
                algo(&b, 0.0, 3),
                Err(QbdError::NoConvergence { iterations: 3, .. })
            ));
        });
        // 20 forced iterations: well past convergence of the quadratic
        // methods, but before their iterates decay far enough to overflow
        // the diverged recurrences.
        let many = allocations_during(|| {
            assert!(matches!(
                algo(&b, 0.0, 20),
                Err(QbdError::NoConvergence { iterations: 20, .. })
            ));
        });
        assert_eq!(
            few, many,
            "{name}: allocation count grew with the iteration count \
             ({few} allocations over 3 iterations vs {many} over 20) — \
             the loop body is not allocation-free"
        );
        // Sanity: setup really is the only allocating phase, and it is
        // bounded (workspace + LU + result bookkeeping).
        assert!(few > 0, "{name}: counter not wired up");
        assert!(
            few < 64,
            "{name}: suspiciously many setup allocations ({few})"
        );
    }
}
