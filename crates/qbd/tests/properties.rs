//! Property-based tests for the QBD solver on randomly generated
//! two-phase QBD processes.

use proptest::prelude::*;
use slb_linalg::Matrix;
use slb_qbd::{
    functional_iteration, logarithmic_reduction, rate_matrix, QbdBlocks, SolveOptions, Tail,
};

/// Random stable two-phase QBD (MMPP/M/1-flavoured): per-phase arrival
/// rates below the service rate, positive phase switching.
fn stable_two_phase() -> impl Strategy<Value = QbdBlocks> {
    (0.05f64..0.85, 0.05f64..0.85, 0.05f64..2.0).prop_map(|(l0, l1, r)| {
        let mu = 1.0;
        let a0 = Matrix::from_rows(&[&[l0, 0.0], &[0.0, l1]]).unwrap();
        let a2 = Matrix::from_rows(&[&[mu, 0.0], &[0.0, mu]]).unwrap();
        let a1 = Matrix::from_rows(&[&[-(l0 + mu + r), r], &[r, -(l1 + mu + r)]]).unwrap();
        let r00 = Matrix::from_rows(&[&[-(l0 + r), r], &[r, -(l1 + r)]]).unwrap();
        let r01 = a0.clone();
        let r10 = a2.clone();
        QbdBlocks::new(r00, r01, r10, a0, a1, a2).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn g_satisfies_quadratic_and_is_stochastic(b in stable_two_phase()) {
        let g = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        prop_assert!(g.residual < 1e-10, "residual {}", g.residual);
        // Stable QBD ⇒ G stochastic.
        for r in 0..2 {
            let s: f64 = g.g.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8, "row sum {s}");
        }
    }

    #[test]
    fn logred_agrees_with_functional_iteration(b in stable_two_phase()) {
        let g1 = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        let g2 = functional_iteration(&b, 1e-12, 500_000).unwrap();
        prop_assert!(g1.g.approx_eq(&g2.g, 1e-8));
    }

    #[test]
    fn r_is_nonnegative_with_subunit_radius(b in stable_two_phase()) {
        let g = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        let r = rate_matrix(&b, &g.g).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!(r[(i, j)] >= -1e-12, "negative R entry {}", r[(i, j)]);
            }
        }
        let p = slb_linalg::power_iteration(&r, 1e-12, 100_000).unwrap();
        prop_assert!(p.eigenvalue < 1.0 - 1e-9, "sp(R) = {}", p.eigenvalue);
    }

    #[test]
    fn solution_is_a_distribution_matching_truncation(b in stable_two_phase()) {
        let sol = b.solve(&SolveOptions::default()).unwrap();
        prop_assert!((sol.total_mass() - 1.0).abs() < 1e-8);
        prop_assert!(sol.residual() < 1e-8);

        // Compare against brute-force truncation at 80 levels.
        let q = b.truncated_generator(80);
        let pi = slb_markov::gth_stationary(&q).unwrap();
        for (b, p) in sol.boundary().iter().zip(&pi) {
            prop_assert!((b - p).abs() < 1e-6);
        }
        for lvl in 0..4 {
            let lp = sol.level_prob(lvl);
            for i in 0..2 {
                let truth = pi[2 + lvl * 2 + i];
                prop_assert!((lp[i] - truth).abs() < 1e-6,
                    "level {lvl} phase {i}: {} vs {}", lp[i], truth);
            }
        }
    }

    #[test]
    fn mean_cost_matches_truncated_sum(b in stable_two_phase()) {
        let sol = b.solve(&SolveOptions::default()).unwrap();
        // Cost = level index (number of "jobs"): boundary 0, level q -> q+1.
        let mean = sol.mean_linear_cost(&[0.0, 0.0], &[1.0, 1.0], &[1.0, 1.0]);

        // Direct summation over many levels.
        let mut direct = 0.0;
        for q in 0..400 {
            let lp = sol.level_prob(q);
            direct += (q as f64 + 1.0) * (lp[0] + lp[1]);
        }
        prop_assert!((mean - direct).abs() < 1e-6, "{mean} vs {direct}");
    }

    #[test]
    fn matrix_tail_consistency(b in stable_two_phase()) {
        let sol = b.solve(&SolveOptions::default()).unwrap();
        // π_{q+1} = π_q · R must hold for generated levels.
        if let Tail::Matrix(r) = sol.tail() {
            let p3 = sol.level_prob(3);
            let p4 = sol.level_prob(4);
            let expect = r.vec_mat(&p3);
            for (a, e) in p4.iter().zip(&expect) {
                prop_assert!((a - e).abs() < 1e-12);
            }
        } else {
            prop_assert!(false, "full solve must produce a matrix tail");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_g_algorithms_agree_on_random_qbds(b in stable_two_phase()) {
        use slb_qbd::{cyclic_reduction, logarithmic_reduction, u_based_iteration};
        let lr = logarithmic_reduction(&b, 1e-14, 64).unwrap();
        let cr = cyclic_reduction(&b, 1e-13, 64).unwrap();
        let ub = u_based_iteration(&b, 1e-13, 200_000).unwrap();
        prop_assert!(lr.g.approx_eq(&cr.g, 1e-8), "CR disagrees");
        prop_assert!(lr.g.approx_eq(&ub.g, 1e-7), "U-based disagrees");
        // All stable chains give stochastic G.
        for r in 0..lr.g.rows() {
            let s: f64 = lr.g.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8, "row {r} sums to {s}");
        }
    }

    #[test]
    fn decay_rate_matches_observed_level_ratio(b in stable_two_phase()) {
        use slb_qbd::decay_rate;
        let eta = decay_rate(&b, 1e-14, 64).unwrap();
        prop_assert!(eta > 0.0 && eta < 1.0, "eta = {eta}");
        let sol = b.solve(&SolveOptions::default()).unwrap();
        // Deep in the tail, successive level masses contract by sp(R).
        let m20 = sol.level_mass(20);
        let m21 = sol.level_mass(21);
        prop_assume!(m20 > 1e-250);
        prop_assert!(
            (m21 / m20 - eta).abs() < 1e-3 * eta.max(1e-6),
            "ratio {} vs eta {eta}", m21 / m20
        );
    }
}
