//! The delay/feedback trade-off: how many servers is it worth polling?
//!
//! ```text
//! cargo run --release --example polling_tradeoff
//! ```
//!
//! SQ(d) interpolates between zero-feedback random routing (d = 1) and
//! full-feedback JSQ (d = N). The introduction of the paper frames the
//! policy as buying delay with polling messages; this example measures
//! that trade-off curve for a 16-server pool — including how it shifts
//! under burstier-than-Poisson arrivals and high-variance service times,
//! the MAP/PH-flavoured extension the paper's conclusion points to.

use slb::sim::{ArrivalProcess, ServiceDistribution};
use slb::{Policy, SimConfig};

fn run(
    n: usize,
    rho: f64,
    policy: Policy,
    arrival: ArrivalProcess,
    service: ServiceDistribution,
) -> Result<f64, Box<dyn std::error::Error>> {
    Ok(SimConfig::new(n, rho)?
        .policy(policy)
        .arrival(arrival)
        .service(service)
        .jobs(1_000_000)
        .warmup(100_000)
        .seed(0xD)
        .run()?
        .mean_delay)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, rho) = (16usize, 0.9);
    println!("N = {n}, rho = {rho}: mean delay vs polling budget d\n");

    let scenarios: [(&str, ArrivalProcess, ServiceDistribution); 3] = [
        (
            "Poisson / exp (paper)",
            ArrivalProcess::Poisson,
            ServiceDistribution::exp_unit(),
        ),
        (
            "bursty arrivals (H2)",
            ArrivalProcess::HyperExp {
                p_percent: 90,
                ratio: 16,
            },
            ServiceDistribution::exp_unit(),
        ),
        (
            "heavy service (H2)",
            ArrivalProcess::Poisson,
            ServiceDistribution::HyperExp {
                p: 0.95,
                rate1: 1.9,
                rate2: 0.1,
            },
        ),
    ];

    print!("{:>4}  {:>6}", "d", "msgs");
    for (name, _, _) in &scenarios {
        print!("  {name:>22}");
    }
    println!();

    let mut baseline = [0.0f64; 3];
    for d in [1usize, 2, 3, 4, 8, 16] {
        let policy = Policy::SqD { d };
        print!("{d:>4}  {:>6}", policy.poll_cost(n));
        for (i, (_, arrival, service)) in scenarios.iter().enumerate() {
            let delay = run(n, rho, policy, *arrival, *service)?;
            if d == 1 {
                baseline[i] = delay;
            }
            print!("  {delay:>12.3} ({:>5.1}%)", 100.0 * delay / baseline[i]);
        }
        println!();
    }

    println!(
        "\nReading: the step from d = 1 to d = 2 captures most of the possible \
         improvement (the power-of-two effect) at a cost of 2 messages/job; \
         returns diminish sharply beyond d = 3-4. Burstiness and service \
         variability raise delays across the board but do not change the \
         shape of the trade-off."
    );
    Ok(())
}
