//! When is the mean-field ("power of two") formula safe?
//!
//! ```text
//! cargo run --release --example asymptotic_pitfalls
//! ```
//!
//! The paper's motivating observation (its Figure 9): Eq. 16 is exact as
//! `N → ∞` and *independent of N*, so its error at finite `N` is invisible
//! from within the asymptotic theory. This example sweeps `N` at two
//! utilizations and prints the relative error of the formula against
//! simulation, next to the finite-regime lower bound — which tracks the
//! truth at every `N`.

use slb::{Policy, SimConfig, Sqd};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = 2;
    let jobs = 1_000_000;

    for rho in [0.75f64, 0.95] {
        let asym = Sqd::new(64, d, rho)?.asymptotic_delay();
        println!("\nrho = {rho}: asymptotic delay = {asym:.4} (same for every N)");
        println!("  N    simulated     lower-bound   asym-error");
        for n in [2usize, 3, 4, 6, 8, 12, 16, 32, 64] {
            let sim = SimConfig::new(n, rho)?
                .policy(Policy::SqD { d })
                .jobs(jobs)
                .warmup(jobs / 10)
                .seed(100 + n as u64)
                .run()?;
            // Threshold chosen so the lower-bound chain stays small while
            // remaining tight; T = 3 suffices for d = 2 (see Fig. 10).
            let lb = if n <= 16 {
                format!("{:.4}", Sqd::new(n, d, rho)?.lower_bound(3)?.delay)
            } else {
                "   (skipped)".into()
            };
            let err = 100.0 * (sim.mean_delay - asym).abs() / sim.mean_delay;
            println!("{n:>3}   {:>9.4}   {lb:>11}   {err:>7.2}%", sim.mean_delay);
        }
    }

    println!(
        "\nReading: at rho = 0.75 the formula is usable beyond a few dozen \
         servers; at rho = 0.95 even N = 64 carries percent-level error and \
         small pools are off by tens of percent — exactly the regime where \
         the finite bounds matter."
    );
    Ok(())
}
