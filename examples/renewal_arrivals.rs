//! Beyond Poisson: the Theorem-2 decay root σ for renewal arrivals.
//!
//! ```text
//! cargo run --release --example renewal_arrivals
//! ```
//!
//! The paper's conclusion flags the Poisson assumption as its main
//! restriction and points to Markov-arrival / phase-type extensions.
//! Theorem 2 already covers renewal arrivals: the lower-bound model's
//! tail decays as `σᴺ` per block, with `σ` the root of
//! `x = A*(µ(1−x))`. This example computes σ for arrival processes of
//! equal rate but different burstiness — including a phase-type law via
//! the generic LST hook — and checks the ranking against simulated
//! queue-length tails.

use slb::core::sigma::{solve_sigma, solve_sigma_lst, Interarrival};
use slb::markov::PhaseType;
use slb::sim::ArrivalProcess;
use slb::{Policy, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate = 0.85; // per-server load; aggregate rate λN set by the sim
    println!("Decay root sigma (x = A*(mu(1-x))) at per-server load {rate}:\n");

    let det = solve_sigma(&Interarrival::Deterministic { gap: 1.0 / rate }, 1.0)?;
    let erl4 = solve_sigma(
        &Interarrival::Erlang {
            k: 4,
            rate: 4.0 * rate,
        },
        1.0,
    )?;
    let poi = solve_sigma(&Interarrival::Exponential { rate }, 1.0)?;
    // A bursty PH law (hyperexponential, CV² > 1, same mean 1/rate)
    // through the generic LST hook.
    let ph = PhaseType::hyperexponential(&[0.9, 0.1], &[1.8 * rate, 0.2 * rate])?;
    let hyp = solve_sigma_lst(|s| ph.lst(s).expect("PH LST"), ph.mean()?, 1.0)?;

    println!("deterministic (CV^2 = 0)    : sigma = {det:.4}");
    println!("Erlang-4      (CV^2 = 0.25) : sigma = {erl4:.4}");
    println!("Poisson       (CV^2 = 1)    : sigma = {poi:.4}  (= rho, Theorem 3)");
    println!("hyperexp PH   (CV^2 > 1)    : sigma = {hyp:.4}");

    println!(
        "\nSmoother arrivals -> smaller sigma -> lighter congestion tails. \
         Checking the ranking against simulation (N = 8, SQ(2)):\n"
    );

    let scenarios: [(&str, ArrivalProcess); 3] = [
        ("deterministic", ArrivalProcess::Deterministic),
        ("Poisson", ArrivalProcess::Poisson),
        (
            "hyperexp",
            ArrivalProcess::HyperExp {
                p_percent: 90,
                ratio: 12,
            },
        ),
    ];
    for (name, arrival) in scenarios {
        let res = SimConfig::new(8, rate)?
            .policy(Policy::SqD { d: 2 })
            .arrival(arrival)
            .jobs(1_000_000)
            .warmup(100_000)
            .seed(0x5E)
            .run()?;
        let t3 = res.queue_tail.get(3).copied().unwrap_or(0.0);
        println!(
            "{name:>14}: mean delay {:.3}, P(queue >= 3) = {t3:.5}",
            res.mean_delay
        );
    }

    println!(
        "\nThe simulated delay and tail mass increase with arrival \
         variability exactly as the sigma ordering predicts."
    );
    Ok(())
}
