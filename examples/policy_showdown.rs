//! Policy showdown: delay vs feedback cost across seven dispatchers.
//!
//! ```text
//! cargo run --release --example policy_showdown
//! ```
//!
//! The paper's motivation is the delay/overhead trade-off: JSQ is
//! delay-optimal but polls every server, random polling costs nothing
//! but queues explode. This example simulates the whole policy spectrum
//! — including the JIQ and power-of-d-with-memory extensions — at equal
//! load and prints mean delay, p99 delay and the per-job feedback cost,
//! making the "power of two choices" (and of one extra bit of memory)
//! directly visible.

use slb::{Policy, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, rho, jobs) = (10usize, 0.9f64, 1_500_000u64);
    let policies: &[(&str, Policy)] = &[
        ("random (SQ(1))", Policy::Random),
        ("round-robin", Policy::RoundRobin),
        ("JIQ", Policy::Jiq),
        ("SQ(2)", Policy::SqD { d: 2 }),
        ("SQ(2) + memory", Policy::SqDMemory { d: 2 }),
        ("SQ(3)", Policy::SqD { d: 3 }),
        ("JSQ (SQ(N))", Policy::Jsq),
    ];

    println!("N = {n} servers at utilization {rho}, {jobs} jobs per run\n");
    println!("  policy            mean delay    p99 delay   polls/job");

    for (name, policy) in policies {
        let res = SimConfig::new(n, rho)?
            .policy(*policy)
            .jobs(jobs)
            .warmup(jobs / 10)
            .seed(77)
            .run()?;
        let p99 = res.delay_quantile(0.99).expect("jobs were measured");
        println!(
            "  {name:<16} {:>10.4}   {p99:>10.4}   {:>9}",
            res.mean_delay,
            policy.poll_cost(n)
        );
    }

    println!();
    println!(
        "Two random polls capture most of JSQ's gain (the power-of-two \
         effect); one remembered sample closes half the remaining gap for \
         free, and JIQ rivals SQ(2) with zero polls at dispatch time."
    );
    Ok(())
}
