//! Capacity planning with guaranteed bounds.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! Scenario: an operator runs a *small* dispatcher pool (N = 8 workers,
//! power-of-two polling) and must pick the highest admissible utilization
//! such that the mean response time stays below an SLA of 2.5 service
//! times.
//!
//! Planning with the textbook asymptotic formula is unsafe at this scale:
//! it underestimates delay, so the pool would be run too hot. The
//! finite-regime *upper* bound is a certificate: if the upper bound meets
//! the SLA, the real system does too. This example finds both operating
//! points and quantifies the (true, simulated) SLA violation the
//! asymptotic plan would have caused.

use slb::{Policy, SimConfig, Sqd};

const N: usize = 8;
const D: usize = 2;
const T: u32 = 4;
const SLA: f64 = 2.5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Sizing an SQ({D}) pool of N = {N} servers for SLA: E[delay] <= {SLA}\n");

    // Sweep utilization on a fine grid; record the last admissible point
    // under each planning rule.
    let mut max_rho_asym: f64 = 0.0;
    let mut max_rho_bound: f64 = 0.0;
    println!(" rho    asymptotic   upper-bound   admissible(asym/bound)");
    for i in 1..100 {
        let rho = i as f64 / 100.0;
        let sqd = Sqd::new(N, D, rho)?;
        let asym = sqd.asymptotic_delay();
        let ub = sqd.upper_bound(T).map(|r| r.delay);
        if asym <= SLA {
            max_rho_asym = rho;
        }
        let (ub_str, ub_ok) = match ub {
            Ok(v) => (format!("{v:.4}"), v <= SLA),
            Err(_) => ("unstable".into(), false),
        };
        if ub_ok {
            max_rho_bound = rho;
        }
        if i % 10 == 0 || (0.80..0.98).contains(&rho) && i % 2 == 0 {
            println!(
                "{rho:.2}   {asym:>9.4}   {ub_str:>10}       {}/{}",
                if asym <= SLA { "yes" } else { "NO " },
                if ub_ok { "yes" } else { "NO " },
            );
        }
    }

    println!("\nasymptotic plan : run at rho = {max_rho_asym:.2}");
    println!("certified plan  : run at rho = {max_rho_bound:.2}");

    // What would actually happen at the asymptotic operating point?
    let sim = SimConfig::new(N, max_rho_asym)?
        .policy(Policy::SqD { d: D })
        .jobs(2_000_000)
        .warmup(200_000)
        .seed(7)
        .run()?;
    println!(
        "\nAt the asymptotic plan's rho = {max_rho_asym:.2}, the real (simulated) \
         delay is {:.3} ± {:.3}",
        sim.mean_delay, sim.ci_halfwidth
    );
    if sim.mean_delay > SLA {
        println!(
            "=> the asymptotic plan VIOLATES the SLA by {:.1}%; the certified \
             plan's headroom was needed.",
            100.0 * (sim.mean_delay - SLA) / SLA
        );
    } else {
        println!("=> the asymptotic plan happens to meet the SLA at this configuration.");
    }

    let sim_b = SimConfig::new(N, max_rho_bound)?
        .policy(Policy::SqD { d: D })
        .jobs(2_000_000)
        .warmup(200_000)
        .seed(8)
        .run()?;
    println!(
        "At the certified rho = {max_rho_bound:.2}, the simulated delay is \
         {:.3} ± {:.3} (<= {SLA} as guaranteed).",
        sim_b.mean_delay, sim_b.ci_halfwidth
    );
    Ok(())
}
