//! How long until steady-state numbers can be trusted?
//!
//! ```text
//! cargo run --release --example warmup_horizon
//! ```
//!
//! Stationary bounds (this paper's subject) describe a system that has
//! been running "forever". After a deploy, a failover or a load spike,
//! the real system starts cold — and every measurement taken before the
//! transient dies down is biased low. This example computes, for a small
//! SQ(2) pool, the exact finite-N warm-up horizon (time until the state
//! law is within TV distance 1e-3 of stationarity) and the mean-field
//! analogue, across utilizations.

use slb::core::meanfield::MeanField;
use slb::core::transient::TransientSqd;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d, cap) = (3usize, 2usize, 14u32);
    println!("Warm-up horizon from a cold start, SQ({d}) with N = {n}\n");
    println!("  rho   t_warmup (exact N={n})   t_warmup (fluid)   delay@t=10 / stationary");

    for rho in [0.5, 0.7, 0.85, 0.95] {
        let tr = TransientSqd::new(n, d, rho, cap)?;
        let finite = tr.relaxation_time(1e-3, 1_000_000.0)?;
        let mut mf = MeanField::new(rho, d)?;
        let fluid = mf.run_to_equilibrium(1e-8, 0.05, 1_000_000.0)?;
        // Bias of a naive measurement taken 10 service times in:
        let early = tr.mean_jobs_at(10.0)?;
        let stat = tr.stationary_mean_jobs();
        println!(
            "  {rho:.2}  {finite:>12.1}           {fluid:>10.1}          {:.0}%",
            100.0 * early / stat
        );
    }

    println!();
    println!(
        "At high utilization the warm-up horizon runs to hundreds of mean \
         service times: a measurement (or a simulation warm-up) of 10 \
         service times captures only a fraction of the stationary queue \
         mass. This is the dynamic face of the paper's warning about \
         high-rho regimes."
    );
    Ok(())
}
