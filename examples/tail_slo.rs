//! Tail-latency SLOs from percentile bounds, not just means.
//!
//! ```text
//! cargo run --release --example tail_slo
//! ```
//!
//! A service team wants to promise "99% of requests finish within X
//! service units" on a small 4-server pool with power-of-two routing.
//! The mean bounds of the paper cannot answer that; the mixture-of-
//! Erlangs delay distributions can. This example computes guaranteed
//! (upper-model) and optimistic (lower-model) p50/p90/p99 delays across
//! utilizations and finds the highest load at which the p99 SLO still
//! holds.

use slb::{BoundKind, Sqd};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d, t) = (4, 2, 3);
    let slo_p = 0.99;
    let slo_target = 8.0; // p99 must stay below 8 mean service times

    println!("Delay percentiles for SQ({d}) on N = {n} servers (T = {t})\n");
    println!("  rho     p50 [lo, hi]       p90 [lo, hi]       p99 [lo, hi]");

    let mut last_ok = None;
    for i in 1..=17 {
        let rho = 0.05 * f64::from(i);
        let sqd = Sqd::new(n, d, rho)?;
        let lo = sqd.delay_distribution(BoundKind::Lower, t)?;
        let Ok(hi) = sqd.delay_distribution(BoundKind::Upper, t) else {
            println!("  {rho:.2}  upper model unstable at T = {t}; raise T for certification");
            continue;
        };
        let band = |p: f64| -> Result<(f64, f64), slb::CoreError> {
            Ok((lo.quantile(p)?, hi.quantile(p)?))
        };
        let (l50, h50) = band(0.5)?;
        let (l90, h90) = band(0.9)?;
        let (l99, h99) = band(slo_p)?;
        println!(
            "  {rho:.2}  [{l50:6.2}, {h50:6.2}]   [{l90:6.2}, {h90:6.2}]   [{l99:6.2}, {h99:6.2}]"
        );
        if h99 <= slo_target {
            last_ok = Some(rho);
        }
    }

    println!();
    match last_ok {
        Some(rho) => println!(
            "The certified p99 (upper model) stays below {slo_target} up to \
             utilization {rho:.2}: that is the operating point a cautious \
             SRE can sign off on."
        ),
        None => println!("No tested utilization certifies the p99 target."),
    }
    Ok(())
}
