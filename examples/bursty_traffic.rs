//! Sizing under bursty traffic: the paper's MAP future work, in action.
//!
//! ```text
//! cargo run --release --example bursty_traffic
//! ```
//!
//! Real traces are rarely Poisson. This example models a diurnal-ish
//! on/off load as a two-phase MMPP, computes finite-regime delay bounds
//! with the MAP-modulated models of `slb-mapph`, and answers a capacity
//! question the asymptotic (and Poisson) analysis gets wrong: how many
//! servers does a target mean delay need when arrivals are bursty?

use slb::markov::Map;
use slb::MapSqd;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // On/off load: quiet phase at 0.2 jobs/unit, busy bursts at 4x the
    // rate, switching every ~10 service times on average.
    let map = Map::mmpp2(0.1, 0.1, 0.2, 0.8)?;
    let scv = map.interarrival_scv()?;
    let (d, t, rho) = (2, 3, 0.7);
    let target_delay = 3.0;

    println!("Bursty arrivals (MMPP-2, interarrival SCV = {scv:.2}) at utilization {rho}\n");
    println!("  N    Poisson LB   bursty LB   bursty UB   meets target (UB <= {target_delay})?");

    for n in [2usize, 3, 4, 6, 8] {
        let poisson = slb::Sqd::new(n, d.min(n), rho)?.lower_bound(t)?.delay;
        let model = MapSqd::with_utilization(n, d.min(n), &map, rho)?;
        let lb = model.lower_bound(t)?.delay;
        let ub = model.upper_bound(t).map(|r| r.delay);
        let (ub_txt, ok) = match ub {
            Ok(v) => (format!("{v:9.4}"), v <= target_delay),
            Err(_) => ("unstable".to_string(), false),
        };
        println!(
            "  {n:<3}  {poisson:10.4}  {lb:10.4}  {ub_txt:>9}   {}",
            if ok { "yes" } else { "no" }
        );
    }

    println!();
    println!(
        "Burstiness (SCV {scv:.2} > 1) inflates delay well beyond the Poisson \
         prediction at equal utilization — a Poisson-based capacity plan \
         under-provisions. The MAP bound models quantify exactly how much \
         head-room the bursts require, at any finite N. (The upper bound \
         is not monotone in N at fixed T: a larger pool holds more jobs \
         inside the same imbalance threshold, so the truncation bites \
         harder — raise T to tighten it.)"
    );
    Ok(())
}
