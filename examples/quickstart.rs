//! Quickstart: bound, simulate and approximate one SQ(d) system.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Computes, for a 6-server system with 2 choices at 80% utilization:
//! the finite-regime lower/upper delay bounds (ICDCS 2016), an
//! independent discrete-event simulation, and the classical asymptotic
//! formula — and shows how they relate.

use slb::{Policy, SimConfig, Sqd};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d, rho, t) = (6, 2, 0.80, 3);
    let sqd = Sqd::new(n, d, rho)?;

    println!("SQ({d}) with N = {n} servers at utilization rho = {rho}\n");

    let lower = sqd.lower_bound(t)?;
    let upper = sqd.upper_bound(t)?;
    let asym = sqd.asymptotic_delay();

    let sim = SimConfig::new(n, rho)?
        .policy(Policy::SqD { d })
        .jobs(1_000_000)
        .warmup(100_000)
        .seed(2016)
        .run()?;

    println!("lower bound (T = {t})  : {:.4}", lower.delay);
    println!(
        "simulation           : {:.4} ± {:.4} (95% CI, {} jobs)",
        sim.mean_delay, sim.ci_halfwidth, sim.jobs_measured
    );
    println!("upper bound (T = {t})  : {:.4}", upper.delay);
    println!("asymptotic (N = inf) : {asym:.4}");

    println!();
    println!(
        "The bounds sandwich the simulated truth; the asymptotic formula \
         undershoots it by {:.1}%.",
        100.0 * (sim.mean_delay - asym) / sim.mean_delay
    );
    println!(
        "Bound-model sizes: boundary {} states, {} states per repeating \
         block (C(N+T-1, T)); G converged in {} logarithmic-reduction \
         iterations.",
        upper.boundary_states, upper.level_states, upper.g_iterations
    );
    Ok(())
}
