//! Value-generation strategies: the [`Strategy`] trait, range and tuple
//! instances, and the `prop_map` / `prop_flat_map` combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRunner;

/// A recipe for generating values of an output type.
///
/// Unlike the real crate there is no value tree and no shrinking:
/// `generate` directly produces one random value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy, then
    /// samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategies may be used behind references.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.sample_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.sample_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        runner.sample_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
