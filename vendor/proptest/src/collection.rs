//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, runner: &mut TestRunner) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _runner: &mut TestRunner) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, runner: &mut TestRunner) -> usize {
        runner.sample_range(self.clone())
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = self.size.pick(runner);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}
