//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment cannot reach crates.io, so the real `proptest` is
//! unavailable. This shim keeps the workspace's property-based tests
//! *running* (not merely compiling) by re-implementing the API surface
//! they consume:
//!
//! * the [`proptest!`] macro with the `#![proptest_config(...)]` header,
//! * [`strategy::Strategy`] with its `prop_map` / `prop_flat_map` combinators,
//! * numeric range strategies, tuple strategies, [`prelude::Just`] and
//!   [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from the real crate are intentional and documented:
//! generation is plain random sampling (no size ramping) and failing
//! cases are **not shrunk** — the failure message simply reports the
//! panic from the offending case. Runs are deterministic: each test
//! derives its RNG seed from its own name, so failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `proptest!` doc example necessarily shows `#[test]` functions; they
// are compile-checked, which is all a macro-usage example needs.
#![allow(clippy::test_attr_in_doctest)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Expands a block of property tests. Mirrors `proptest::proptest!`:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // Rejections via prop_assume! are retried without counting,
            // up to a bounded number of attempts.
            while accepted < config.cases && attempts < config.cases.saturating_mul(16) {
                attempts += 1;
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut runner);)+
                let ran: bool = (move || -> bool {
                    let _ = $body;
                    true
                })();
                if ran {
                    accepted += 1;
                }
            }
            assert!(
                accepted >= config.cases / 2,
                "too many cases rejected by prop_assume!: \
                 {accepted} accepted in {attempts} attempts"
            );
        }
    )*};
}

/// Asserts a condition inside a property test (panics like `assert!`; the
/// real crate's shrinking machinery is intentionally absent).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Rejects the current case (it is regenerated and not counted) when the
/// assumption does not hold. Must appear in the top-level block of the
/// test body, as in the real crate's common usage.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}
