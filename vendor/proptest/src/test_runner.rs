//! Test-run configuration and the deterministic RNG handed to strategies.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Per-block configuration; only the `cases` knob of the real crate is
/// supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The source of randomness passed to [`crate::strategy::Strategy`]
/// implementations during generation.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A runner whose seed is derived (FNV-1a) from the test name, so each
    /// test has its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    /// Uniform sample from a range (integer or `f64`).
    pub fn sample_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen()
    }
}
