//! Deterministic fault injection for the serving stack.
//!
//! A *fail point* is a named site in production code — `"store.disk_write"`,
//! `"pool.task_panic"`, `"server.slow_read"` — that asks this registry
//! whether to misbehave right now:
//!
//! ```
//! if slb_fault::fires("store.disk_write") {
//!     // return an injected I/O error instead of writing
//! }
//! ```
//!
//! **Disarmed is free.** When no fault spec is armed (the production
//! default), [`fires`] is a single relaxed atomic load and a branch — no
//! lock, no hash lookup, no allocation — so fail points can sit on hot
//! paths without showing up in benchmarks.
//!
//! **Armed is deterministic.** A spec maps point names to firing
//! probabilities, and every decision is a pure function of
//! `(seed, point name, per-point call index)` through a splitmix64 mix:
//! the same seed replays a byte-identical fault schedule, regardless of
//! wall-clock time or (per point) thread interleaving. [`schedule`]
//! exposes that pure function directly so tests can pin it.
//!
//! Arming happens programmatically ([`arm`]) or from the environment
//! ([`arm_from_env`]): `SLB_FAULTS="store.disk_write=1,server.slow_read=0.5"`
//! with an optional `SLB_FAULT_SEED=42`. The chaos harness spawns a
//! daemon with those variables set; the daemon (and `slb sweep`) opts
//! in by calling [`arm_from_env`] once at startup.
//!
//! The registry needs no per-point declaration: any string is a valid
//! point name and unarmed points never fire. Besides the serving-stack
//! points above, the solver budget (`slb_linalg::Budget::check`)
//! carries two points the cancellation chaos tests arm:
//! `"solver.cancel"` (the poll reports an injected cancellation,
//! aborting the solve exactly as a tripped `CancelToken` would) and
//! `"solver.slow_iter"` (the poll sleeps 1 ms, stretching solves so a
//! mid-run signal lands in a deterministic window).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable holding the fault spec (`name=prob,...`).
pub const ENV_SPEC: &str = "SLB_FAULTS";
/// Environment variable holding the schedule seed (decimal `u64`).
pub const ENV_SEED: &str = "SLB_FAULT_SEED";

/// Fast-path flag: `false` (the default) means [`fires`] returns
/// immediately without touching the registry.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed registry. Only consulted when [`ARMED`] is set, so the
/// mutex is never contended in production.
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

struct Point {
    /// Firing probability in `[0, 1]`.
    prob: f64,
    /// Calls made against this point so far (the schedule index).
    calls: u64,
    /// Calls that fired.
    hits: u64,
}

struct Registry {
    seed: u64,
    points: HashMap<String, Point>,
    /// Total fired faults across all points.
    fired: u64,
}

fn lock_registry() -> std::sync::MutexGuard<'static, Option<Registry>> {
    // A panic while holding this lock cannot corrupt it (plain data);
    // recover instead of cascading poison through every fail point.
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// splitmix64 — the workspace-standard seed mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// 64-bit FNV-1a over the point name (stable across runs/platforms).
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pure scheduling decision: does call number `index` (0-based) of
/// `point` fire under `seed` and probability `prob`? Everything
/// [`fires`] does reduces to this function, so pinning it pins the
/// whole schedule.
pub fn decide(seed: u64, point: &str, index: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    let x = splitmix64(seed ^ fnv64(point).wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    // Top 53 bits → uniform in [0, 1).
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    u < prob
}

/// The first `calls` decisions of `point` under `seed`/`prob` — the
/// byte-identical fault schedule a daemon armed with the same seed
/// replays. Pure; usable without arming anything.
pub fn schedule(seed: u64, point: &str, prob: f64, calls: u64) -> Vec<bool> {
    (0..calls).map(|i| decide(seed, point, i, prob)).collect()
}

/// Parses a fault spec: comma- or semicolon-separated `name=prob`
/// entries (`prob` a float in `[0, 1]`; bare `name` means `1`).
///
/// # Errors
///
/// Returns a message naming the malformed entry.
fn parse_spec(spec: &str) -> Result<HashMap<String, Point>, String> {
    let mut points = HashMap::new();
    for entry in spec.split([',', ';']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, prob) = match entry.split_once('=') {
            Some((name, raw)) => {
                let prob: f64 = raw
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fault probability in '{entry}'"))?;
                if !(0.0..=1.0).contains(&prob) {
                    return Err(format!("fault probability out of [0,1] in '{entry}'"));
                }
                (name.trim(), prob)
            }
            None => (entry, 1.0),
        };
        if name.is_empty() {
            return Err(format!("empty fault point name in '{entry}'"));
        }
        points.insert(
            name.to_string(),
            Point {
                prob,
                calls: 0,
                hits: 0,
            },
        );
    }
    Ok(points)
}

/// Arms the registry with `spec` (`point=prob` pairs, comma-separated)
/// under `seed`, replacing any previous arming and resetting all
/// counters.
///
/// # Errors
///
/// Returns a message when the spec is malformed; the previous arming
/// (or disarmed state) is left untouched in that case.
pub fn arm(spec: &str, seed: u64) -> Result<(), String> {
    let points = parse_spec(spec)?;
    let mut registry = lock_registry();
    if points.is_empty() {
        *registry = None;
        ARMED.store(false, Ordering::Release);
        return Ok(());
    }
    *registry = Some(Registry {
        seed,
        points,
        fired: 0,
    });
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Arms from `SLB_FAULTS` / `SLB_FAULT_SEED` when set; a no-op (still
/// disarmed) when `SLB_FAULTS` is absent or empty. A malformed spec is
/// reported on stderr rather than crashing the process — a typo in an
/// operator's environment must not take the daemon down.
pub fn arm_from_env() {
    let Ok(spec) = std::env::var(ENV_SPEC) else {
        return;
    };
    if spec.trim().is_empty() {
        return;
    }
    let seed = std::env::var(ENV_SEED)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    match arm(&spec, seed) {
        Ok(()) => eprintln!("slb-fault: armed '{spec}' (seed {seed})"),
        Err(e) => eprintln!("slb-fault: ignoring {ENV_SPEC}: {e}"),
    }
}

/// Disarms every fail point and drops the registry. [`fires`] reverts
/// to its single-branch fast path.
pub fn disarm() {
    let mut registry = lock_registry();
    *registry = None;
    ARMED.store(false, Ordering::Release);
}

/// Whether any fault spec is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Should the fail point `point` misbehave on this call?
///
/// Disarmed: one relaxed load, `false`. Armed: advances the point's
/// deterministic schedule (unknown points never fire but are not
/// errors — a binary may carry more fail points than a spec arms).
pub fn fires(point: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let mut registry = lock_registry();
    let Some(registry) = registry.as_mut() else {
        return false;
    };
    let seed = registry.seed;
    let Some(state) = registry.points.get_mut(point) else {
        return false;
    };
    let index = state.calls;
    state.calls += 1;
    let fire = decide(seed, point, index, state.prob);
    if fire {
        state.hits += 1;
        registry.fired += 1;
    }
    fire
}

/// How many times `point` has fired since arming (0 when disarmed or
/// unknown).
pub fn hits(point: &str) -> u64 {
    lock_registry()
        .as_ref()
        .and_then(|r| r.points.get(point))
        .map_or(0, |p| p.hits)
}

/// Total faults fired across all points since arming (0 when disarmed).
pub fn total_fired() -> u64 {
    lock_registry().as_ref().map_or(0, |r| r.fired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; tests that arm it serialize here.
    fn registry_guard() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_never_fires() {
        let _guard = registry_guard();
        disarm();
        assert!(!armed());
        for _ in 0..100 {
            assert!(!fires("store.disk_write"));
        }
        assert_eq!(total_fired(), 0);
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        // Same seed ⇒ byte-identical schedule; different seed ⇒ (at
        // these lengths) a different one. Pure function, no arming.
        let a = schedule(42, "server.slow_read", 0.5, 256);
        let b = schedule(42, "server.slow_read", 0.5, 256);
        assert_eq!(a, b);
        let c = schedule(43, "server.slow_read", 0.5, 256);
        assert_ne!(a, c);
        let d = schedule(42, "pool.task_panic", 0.5, 256);
        assert_ne!(a, d, "distinct points get distinct streams");
        // Probability extremes are exact, not approximate.
        assert!(schedule(7, "x", 1.0, 64).iter().all(|&f| f));
        assert!(schedule(7, "x", 0.0, 64).iter().all(|&f| !f));
        // 0.5 actually mixes at this length.
        let fired = a.iter().filter(|&&f| f).count();
        assert!((64..=192).contains(&fired), "fired {fired}/256");
    }

    #[test]
    fn armed_fires_follow_the_pure_schedule() {
        let _guard = registry_guard();
        arm("p.always=1, p.half=0.5, p.never=0", 99).unwrap();
        assert!(armed());
        let live: Vec<bool> = (0..64).map(|_| fires("p.half")).collect();
        assert_eq!(live, schedule(99, "p.half", 0.5, 64));
        assert_eq!(hits("p.half"), live.iter().filter(|&&f| f).count() as u64);
        assert!(fires("p.always") && fires("p.always"));
        assert!(!fires("p.never"));
        assert!(!fires("p.unarmed"), "unknown points never fire");
        assert_eq!(total_fired(), hits("p.half") + hits("p.always"));
        // Re-arming with the same seed replays the same schedule.
        arm("p.half=0.5", 99).unwrap();
        let replay: Vec<bool> = (0..64).map(|_| fires("p.half")).collect();
        assert_eq!(replay, live);
        disarm();
        assert!(!fires("p.always"));
    }

    #[test]
    fn spec_parsing_accepts_and_rejects() {
        let _guard = registry_guard();
        arm("a=1;b=0.25 , c", 1).unwrap(); // bare name = always
        assert!(fires("c"));
        disarm();
        assert!(arm("", 1).is_ok()); // empty spec = disarmed
        assert!(!armed());
        assert!(arm("x=zebra", 1).is_err());
        assert!(arm("x=1.5", 1).is_err());
        assert!(arm("=0.5", 1).is_err());
        assert!(!armed(), "a bad spec must leave the registry disarmed");
    }
}
