//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `criterion`
//! is unavailable. This shim keeps the `harness = false` bench targets
//! compiling *and producing useful numbers*: each benchmark closure is
//! warmed up once, then timed for `sample_size` samples, and the
//! min/mean/max wall-clock per iteration is printed in a Criterion-like
//! format. There is no statistical analysis, HTML report, or baseline
//! comparison.
//!
//! Two environment variables extend the shim for scripted runs:
//!
//! * `CRITERION_SAMPLE_SIZE` — overrides every benchmark's sample count
//!   (CI smoke jobs set it to `1` so `cargo bench` stays cheap).
//! * `CRITERION_JSON` — a path; a relative one is resolved against the
//!   *workspace* root (the nearest ancestor directory holding a
//!   `Cargo.lock`), because cargo runs bench binaries with their cwd at
//!   the *package* root. When set, [`criterion_main!`] appends one
//!   machine-readable record per benchmark (median/mean/min/max ns per
//!   iteration, plus the host's available parallelism as `cpus`) to that
//!   JSON file after the groups finish. Records carry
//!   the phase label from `CRITERION_PHASE` (default `"current"`), so a
//!   before/after trajectory can accumulate in a single file — this is
//!   how the repository's `BENCH_*.json` files are produced.
//!
//! ```
//! use criterion::{BenchmarkId, Criterion};
//!
//! let mut c = Criterion::default().sample_size(10);
//! let mut group = c.benchmark_group("demo");
//! group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
//!     b.iter(|| x * x)
//! });
//! group.finish();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark measurement destined for the JSON report.
#[derive(Debug, Clone)]
struct JsonRecord {
    label: String,
    samples: usize,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Records collected by every benchmark of the current process; flushed
/// by [`criterion_main!`] via [`write_json_report`].
static JSON_RECORDS: Mutex<Vec<JsonRecord>> = Mutex::new(Vec::new());

/// Escapes the handful of characters that would break a JSON string.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Flushes the collected benchmark records to the file named by the
/// `CRITERION_JSON` environment variable (no-op when unset).
///
/// The file holds a single JSON array; an existing array is extended in
/// place so successive `cargo bench` invocations (e.g. a pre-change
/// baseline followed by a post-change run, distinguished by
/// `CRITERION_PHASE`) accumulate one trajectory. Called automatically by
/// the [`criterion_main!`] expansion — user code never needs it.
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let path = resolve_against_workspace_root(&path);
    let phase = std::env::var("CRITERION_PHASE").unwrap_or_else(|_| "current".into());
    let records = JSON_RECORDS.lock().expect("json record lock").clone();
    if records.is_empty() {
        return;
    }
    // Recorded so consumers can judge parallel-speedup numbers: a ratio
    // measured on a 1-CPU box says nothing about multi-core scaling.
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let body: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"phase\": \"{}\", \"bench\": \"{}\", \"samples\": {}, \"cpus\": {}, \
                 \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
                json_escape(&phase),
                json_escape(&r.label),
                r.samples,
                cpus,
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
            )
        })
        .collect();
    // Extend an existing array without a JSON parser: strip the closing
    // bracket and splice the new records in front of it.
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let trimmed = existing.trim_end();
    let content = match trimmed.strip_suffix(']') {
        Some(head) if head.trim_end().ends_with('}') => {
            format!("{},\n{}\n]\n", head.trim_end(), body.join(",\n"))
        }
        _ => format!("[\n{}\n]\n", body.join(",\n")),
    };
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

/// Resolves a relative `CRITERION_JSON` path against the *workspace*
/// root — the first ancestor of the current directory holding a
/// `Cargo.lock`. Cargo runs bench binaries with their cwd at the
/// *package* root, so without this a relative path would land next to
/// the bench crate's manifest; absolute paths pass through untouched,
/// and so does everything when no lock file is found (an installed
/// binary far from any checkout).
fn resolve_against_workspace_root(path: &str) -> String {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return path.to_string();
    }
    let Ok(mut dir) = std::env::current_dir() else {
        return path.to_string();
    };
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join(p).to_string_lossy().into_owned();
        }
        if !dir.pop() {
            return path.to_string();
        }
    }
}

/// The effective sample count: the configured value unless the
/// `CRITERION_SAMPLE_SIZE` environment variable overrides it.
fn effective_sample_size(configured: usize) -> usize {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(configured)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
            sample_size,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    // Held only so groups cannot outlive (or interleave with) their
    // Criterion, matching the real API's exclusive borrow.
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    /// Group-local sample count; starts at the parent's value and, as in
    /// the real crate, overriding it here does not leak into later groups.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rate figures.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.into(),
            self.sample_size,
            self.throughput.as_ref(),
            &mut f,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.into(),
            self.sample_size,
            self.throughput.as_ref(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (purely cosmetic in the shim).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements (jobs, states, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample, recording wall-clock durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<&Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: effective_sample_size(sample_size),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {:<40} (no samples)", id.label);
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let median = {
        let mut sorted = bencher.samples.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    };
    JSON_RECORDS
        .lock()
        .expect("json record lock")
        .push(JsonRecord {
            label: id.label.clone(),
            samples: bencher.samples.len(),
            median_ns: median.as_nanos() as f64,
            mean_ns: mean.as_nanos() as f64,
            min_ns: min.as_nanos() as f64,
            max_ns: max.as_nanos() as f64,
        });
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:.3e} elem/s", *n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:.3e} B/s", *n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "  {:<40} [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]{rate}",
        id.label
    );
}

/// Declares a group of benchmark functions; supports both the simple and
/// the `name/config/targets` forms of the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given benchmark groups, then flushing the
/// machine-readable report (see [`write_json_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}
