//! Minimal signal-to-flag shim (offline stand-in for the tiny slice of
//! `signal-hook` / `ctrlc` this workspace needs).
//!
//! [`install`] registers a handler for `SIGINT` (ctrl-C) and `SIGTERM`
//! that does nothing but set a process-global [`AtomicBool`]; the
//! application polls [`triggered`] at its own pace. Setting a
//! pre-`static` atomic is async-signal-safe, so the handler performs no
//! allocation, locking or I/O.
//!
//! On non-Unix targets [`install`] is a no-op and [`triggered`] only
//! ever reports `true` after [`trigger`] (the programmatic path used by
//! tests and by graceful in-process shutdown).
//!
//! ```
//! sigint::install();
//! assert!(!sigint::triggered());
//! sigint::trigger(); // what the handler does on SIGINT/SIGTERM
//! assert!(sigint::triggered());
//! sigint::reset();
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

static FLAG: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal (or [`trigger`]) has been observed
/// since the last [`reset`].
pub fn triggered() -> bool {
    FLAG.load(Ordering::SeqCst)
}

/// Raises the flag programmatically — exactly what the signal handler
/// does, usable from tests and from in-process shutdown paths.
pub fn trigger() {
    FLAG.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests; re-arming after a handled shutdown).
pub fn reset() {
    FLAG.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;

    extern "C" {
        /// POSIX `signal(2)`: always linked via libc, no crate needed.
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Async-signal-safe: one relaxed-to-seqcst store on a static.
        super::trigger();
    }

    pub fn install() {
        const SIGINT: c_int = 2;
        const SIGTERM: c_int = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Registers the `SIGINT`/`SIGTERM` handler. Idempotent; call once at
/// startup before entering the poll loop.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lifecycle() {
        install();
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }
}
