//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access, so the real `rand` cannot
//! be fetched from crates.io. This crate implements the exact API surface
//! consumed by `slb-sim` and the vendored `proptest` shim — the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::SmallRng`] — on top of a
//! xoshiro256++ generator seeded through SplitMix64, the same construction
//! the real `SmallRng` uses on 64-bit targets.
//!
//! Determinism matters more than distribution pedigree here: simulator
//! tests pin seeds and assert statistical tolerances, so the generator
//! must be a solid, stable PRNG, but nothing in the workspace depends on
//! the exact stream matching upstream `rand`.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable uniformly from an [`RngCore`] stream ("standard"
/// distribution in real-`rand` terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer sampling on `[0, span)` via the widening
/// multiply trick (Lemire); the modulo bias of the plain remainder would
/// already be far below test tolerances, but this is just as cheap.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value interface; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distributions beyond the uniform [`Standard`] surface.
///
/// The real `rand` keeps these in `rand_distr`; the shim hosts the one
/// non-uniform law the workspace samples in bulk — the unit-rate
/// exponential — because it sits on the discrete-event simulator's
/// innermost loop (one draw per arrival plus one per service).
pub mod distributions {
    use super::RngCore;

    /// Values samplable from a parameterized distribution.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The exponential distribution with rate 1, sampled with the
    /// Marsaglia–Tsang ziggurat — the fast path that replaces the
    /// inverse-CDF `-ln(1 − U)` transform: ~99% of draws cost one
    /// `next_u64`, a table lookup and one multiply, no transcendental
    /// call. Divide the sample by a rate to scale.
    ///
    /// The 256-layer tables are built once at first use from the
    /// published `(R, V)` constants; construction is deterministic, so
    /// fixed-seed streams stay reproducible.
    ///
    /// ```
    /// use rand::distributions::{Distribution, Exp1};
    /// use rand::rngs::SmallRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = SmallRng::seed_from_u64(1);
    /// let x = Exp1.sample(&mut rng);
    /// assert!(x >= 0.0 && x.is_finite());
    /// ```
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Exp1;

    // The published constants carry more digits than f64 resolves;
    // keep them verbatim so they can be checked against the source.
    /// Rightmost ziggurat layer edge for the exponential pdf
    /// (Marsaglia–Tsang, 256 layers).
    #[allow(clippy::excessive_precision)]
    const ZIG_R: f64 = 7.697_117_470_131_049_72;
    /// Common layer area for 256 exponential ziggurat layers
    /// (consistent with [`ZIG_R`]: `R·f(R) + ∫_R^∞ f = V`).
    #[allow(clippy::excessive_precision)]
    const ZIG_V: f64 = 0.003_949_659_822_581_557_2;
    /// Number of ziggurat layers (table index is one byte).
    const ZIG_LAYERS: usize = 256;

    struct Tables {
        /// Layer right edges `x[0] > x[1] > … > x[256] = 0`; `x[0]` is
        /// the virtual base-layer edge `V / f(R)`.
        x: [f64; ZIG_LAYERS + 1],
        /// `f[i] = exp(−x[i])`.
        f: [f64; ZIG_LAYERS + 1],
    }

    fn tables() -> &'static Tables {
        static TABLES: std::sync::OnceLock<Tables> = std::sync::OnceLock::new();
        TABLES.get_or_init(|| {
            let mut x = [0.0; ZIG_LAYERS + 1];
            x[0] = ZIG_V * ZIG_R.exp(); // V / f(R)
            x[1] = ZIG_R;
            for i in 2..ZIG_LAYERS {
                // Edge of layer i: f⁻¹(f(x[i−1]) + V / x[i−1]).
                x[i] = -(ZIG_V / x[i - 1] + (-x[i - 1]).exp()).ln();
            }
            x[ZIG_LAYERS] = 0.0;
            let mut f = [0.0; ZIG_LAYERS + 1];
            for i in 0..=ZIG_LAYERS {
                f[i] = (-x[i]).exp();
            }
            Tables { x, f }
        })
    }

    /// One ziggurat draw against an already-resolved table reference —
    /// the shared body of the scalar [`Distribution::sample`] and the
    /// block [`Exp1::fill`] paths, so the two are *bit-identical* per
    /// draw by construction (pinned by a test in `slb-sim`).
    #[inline(always)]
    fn exp1_draw<R: RngCore + ?Sized>(t: &Tables, rng: &mut R) -> f64 {
        loop {
            // One u64 funds both the layer index (low byte) and the
            // 53-bit uniform (disjoint high bits).
            let bits = rng.next_u64();
            let i = (bits & 0xFF) as usize;
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let x = u * t.x[i];
            if x < t.x[i + 1] {
                return x; // inside the layer's rectangular core
            }
            if i == 0 {
                // Tail beyond R: exponential memorylessness.
                let u2 = f64::sample(rng);
                return ZIG_R - (1.0 - u2).ln();
            }
            // Wedge between the rectangle and the pdf.
            let v = f64::sample(rng);
            if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * v < (-x).exp() {
                return x;
            }
        }
    }

    impl Distribution<f64> for Exp1 {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            exp1_draw(tables(), rng)
        }
    }

    impl Exp1 {
        /// Fills `out` with unit-rate exponential draws in one block:
        /// the `OnceLock` table resolution, the distribution dispatch
        /// and the per-call function boundary are paid once per block
        /// instead of once per draw, and the accept path runs as a
        /// tight table-in-L1 loop. Draw `k` of the block consumes the
        /// generator exactly as `k` scalar [`Distribution::sample`]
        /// calls would, so block and scalar streams are bit-identical
        /// from the same starting state.
        pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
            let t = tables();
            for slot in out {
                *slot = exp1_draw(t, rng);
            }
        }
    }

    use super::Standard;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exp1_ziggurat_matches_exponential_moments() {
        use super::distributions::{Distribution, Exp1};
        let mut rng = SmallRng::seed_from_u64(2024);
        let n = 400_000;
        let (mut sum, mut sum_sq, mut tail) = (0.0f64, 0.0f64, 0u32);
        for _ in 0..n {
            let x = Exp1.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
            sum_sq += x * x;
            if x > 3.0 {
                tail += 1;
            }
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        // P(X > 3) = e^{-3}: the ziggurat tail branch must fire at the
        // right frequency, not just produce valid values.
        let frac = f64::from(tail) / n as f64;
        assert!((frac - (-3.0f64).exp()).abs() < 0.005, "tail {frac}");
    }

    #[test]
    fn exp1_fill_bit_identical_to_scalar_draws() {
        use super::distributions::{Distribution, Exp1};
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            for len in [1usize, 2, 31, 256, 1000] {
                let mut block_rng = SmallRng::seed_from_u64(seed);
                let mut scalar_rng = SmallRng::seed_from_u64(seed);
                let mut block = vec![0.0; len];
                Exp1.fill(&mut block_rng, &mut block);
                for (k, &b) in block.iter().enumerate() {
                    let s = Exp1.sample(&mut scalar_rng);
                    assert!(
                        b.to_bits() == s.to_bits(),
                        "seed {seed}, len {len}, draw {k}: block {b} != scalar {s}"
                    );
                }
                // And the generators end in the same state.
                assert_eq!(block_rng.gen::<u64>(), scalar_rng.gen::<u64>());
            }
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [0usize; 10];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 700, "bucket {i} undersampled: {c}");
        }
        // Inclusive ranges reach their endpoint.
        let mut hit_hi = false;
        for _ in 0..1000 {
            if rng.gen_range(0u32..=3) == 3 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
    }
}
