//! # slb — randomized load balancing in finite regimes
//!
//! A Rust implementation of *Godtschalk & Ciucu, "Randomized Load
//! Balancing in Finite Regimes", ICDCS 2016*: non-asymptotic stochastic
//! lower and upper bounds on the mean delay of the SQ(d) ("power of d
//! choices") policy, together with the classical asymptotic formula, a
//! discrete-event simulator, and the full numerical stack (dense linear
//! algebra, Markov-chain solvers, QBD matrix-geometric methods) they rest
//! on.
//!
//! This crate is a facade: it re-exports the workspace members and the
//! most common entry points. Depend on the sub-crates directly if you
//! only need one layer.
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] (`slb-core`) | SQ(d) model, bound models, asymptotics, mean-field ODE, delay distributions, brute force |
//! | [`sim`] (`slb-sim`) | discrete-event simulator (SQ(d)/JSQ/random/round-robin/JIQ/memory) |
//! | [`qbd`] (`slb-qbd`) | quasi-birth-death solver (logarithmic/cyclic reduction, rate matrix) |
//! | [`markov`] (`slb-markov`) | CTMC/DTMC, GTH, MAPs, phase-type laws, birth–death analytics |
//! | [`mapph`] (`slb-mapph`) | SQ(d) bounds under MAP arrivals; exact MAP/PH/1 (the paper's future work) |
//! | [`linalg`] (`slb-linalg`) | dense matrices, LU, Kronecker products, power iteration |
//!
//! ## Quickstart
//!
//! ```
//! use slb::{Sqd, SimConfig, Policy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 6 servers, 2 choices, 80% utilization.
//! let sqd = Sqd::new(6, 2, 0.8)?;
//!
//! // Finite-regime bounds (threshold T = 3) and the asymptotic formula.
//! let lower = sqd.lower_bound(3)?.delay;
//! let upper = sqd.upper_bound(3)?.delay;
//! let asymptotic = sqd.asymptotic_delay();
//!
//! // An independent simulation of the same system.
//! let sim = SimConfig::new(6, 0.8)?
//!     .policy(Policy::SqD { d: 2 })
//!     .jobs(200_000)
//!     .warmup(20_000)
//!     .run()?;
//!
//! assert!(lower <= sim.mean_delay + 0.05);
//! assert!(sim.mean_delay <= upper + 0.05);
//! assert!(asymptotic < upper); // the N→∞ formula underestimates at N = 6
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slb_core as core;
pub use slb_linalg as linalg;
pub use slb_mapph as mapph;
pub use slb_markov as markov;
pub use slb_qbd as qbd;
pub use slb_sim as sim;

pub use slb_core::{BoundKind, BoundModel, BoundResult, CoreError, DelayDistribution, Sqd};
pub use slb_mapph::{MapPh1, MapSqd};
pub use slb_sim::{Policy, SimConfig, SimResult};
