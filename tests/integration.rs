//! Cross-crate integration tests: the scientific claims of the paper,
//! checked end-to-end across `slb-core`, `slb-qbd`, `slb-markov` and
//! `slb-sim`.

use slb::core::brute::BruteForce;
use slb::core::precedence::verify_redirects;
use slb::core::{BlockSpace, ModelVariant, State};
use slb::qbd::{SolveOptions, Tail};
use slb::{BoundKind, BoundModel, Policy, SimConfig, Sqd};

/// The central sandwich property, against the brute-force oracle:
/// `lower ≤ exact ≤ upper` across (N, d, λ, T).
#[test]
fn bounds_bracket_exact_solution() {
    let grid = [
        (2usize, 2usize, 0.30f64, 2u32),
        (2, 2, 0.70, 2),
        (3, 2, 0.50, 2),
        (3, 2, 0.80, 3),
        (3, 3, 0.60, 2),
        (4, 2, 0.60, 2),
        (4, 4, 0.70, 3),
        (4, 3, 0.40, 2),
    ];
    for (n, d, lam, t) in grid {
        let exact = BruteForce::solve(n, d, lam, 34).unwrap();
        assert!(exact.truncation_mass() < 1e-8, "raise the cap for λ={lam}");
        let exact = exact.mean_delay();
        let sqd = Sqd::new(n, d, lam).unwrap();
        let lb = sqd.lower_bound(t).unwrap().delay;
        let ub = sqd.upper_bound(t).unwrap().delay;
        assert!(
            lb <= exact + 1e-6,
            "N={n} d={d} λ={lam} T={t}: LB {lb} > exact {exact}"
        );
        assert!(
            exact <= ub + 1e-6,
            "N={n} d={d} λ={lam} T={t}: exact {exact} > UB {ub}"
        );
    }
}

/// The bounds must also sandwich an *independent* estimate of the truth:
/// the discrete-event simulator (which shares no code path with the QBD
/// solver beyond arithmetic).
#[test]
fn bounds_bracket_simulation() {
    for (n, d, lam, t) in [
        (3usize, 2usize, 0.7f64, 3u32),
        (6, 2, 0.8, 3),
        (5, 3, 0.75, 3),
    ] {
        let sqd = Sqd::new(n, d, lam).unwrap();
        let lb = sqd.lower_bound(t).unwrap().delay;
        let ub = sqd.upper_bound(t).unwrap().delay;
        // The 1.5M-job budget runs as four parallel replications with
        // merged statistics — same estimand, wall-clock divided by the
        // available cores, deterministic in the thread count.
        let sim = SimConfig::new(n, lam)
            .unwrap()
            .policy(Policy::SqD { d })
            .jobs(375_000)
            .warmup(37_500)
            .seed(0xACC)
            .run_parallel(4, 4)
            .unwrap();
        let slack = 4.0 * sim.ci_halfwidth + 1e-3;
        assert!(
            lb <= sim.mean_delay + slack,
            "N={n} d={d} λ={lam}: LB {lb} > sim {} ± {}",
            sim.mean_delay,
            sim.ci_halfwidth
        );
        assert!(
            sim.mean_delay <= ub + slack,
            "N={n} d={d} λ={lam}: sim {} > UB {ub}",
            sim.mean_delay
        );
    }
}

/// Paper §V: the lower bound is "remarkably tight" — within a few percent
/// of the simulated truth across the Fig. 10 configurations.
#[test]
fn lower_bound_tightness() {
    for (n, t) in [(3usize, 2u32), (3, 3), (6, 3), (12, 3)] {
        for lam in [0.5, 0.7, 0.9] {
            let sqd = Sqd::new(n, 2, lam).unwrap();
            let lb = sqd.lower_bound(t).unwrap().delay;
            let sim = SimConfig::new(n, lam)
                .unwrap()
                .policy(Policy::SqD { d: 2 })
                .jobs(1_000_000)
                .warmup(100_000)
                .seed(0x717)
                .run()
                .unwrap();
            let gap = (sim.mean_delay - lb) / sim.mean_delay;
            // Measured gaps (see EXPERIMENTS.md): ≤ 8% up to λ = 0.7,
            // ≤ 13% at λ = 0.9 for N ≤ 6, and ~18–20% at (N = 12,
            // λ = 0.9) where imbalance regularly exceeds T = 3 (the exact
            // figure moves with the simulator's PRNG stream; the vendored
            // offline `rand` measures 20.0%). The guards below are
            // regression bounds just above those measurements.
            let guard = if lam > 0.8 && n >= 12 { 0.22 } else { 0.15 };
            assert!(
                gap < guard,
                "N={n} T={t} λ={lam}: LB gap {:.1}% too large ({lb} vs {})",
                gap * 100.0,
                sim.mean_delay
            );
            assert!(gap > -0.02, "LB must not exceed the simulation");
        }
    }
}

/// Theorem 3, checked at the QBD level. Three graded facts (see
/// DESIGN.md §4 and EXPERIMENTS.md):
///
/// 1. the *mass* of consecutive repeating levels decays by exactly `ρᴺ`
///    for every configuration (the birth–death cut argument on the total
///    job count is exact);
/// 2. for `d = N` (JSQ, the case proved by Adan et al.) the full *vector*
///    relation `π_{q+1} = ρᴺ π_q` holds to machine precision;
/// 3. for `d < N` our reconstructed lower-bound model satisfies the
///    vector relation approximately (≤ 1e-3 relative), and the resulting
///    scalar-tail delay agrees with the full matrix-geometric delay to
///    better than 1e-6 relative.
#[test]
fn theorem3_scalar_tail_is_rho_to_the_n() {
    for (n, d, lam, t) in [
        (3usize, 2usize, 0.6f64, 2u32),
        (4, 2, 0.8, 3),
        (3, 3, 0.7, 2),
        (4, 4, 0.8, 3),
        (3, 2, 0.9, 3),
    ] {
        let sqd = Sqd::new(n, d, lam).unwrap();
        let model = BoundModel::new(sqd, BoundKind::Lower, t).unwrap();
        let blocks = model.qbd_blocks().unwrap();
        let sol = blocks.solve(&SolveOptions::default()).unwrap();
        let rho_n = lam.powi(n as i32);
        assert!(matches!(sol.tail(), Tail::Matrix(_)));

        // (1) exact mass decay.
        let mass_ratio = sol.level_mass(2) / sol.level_mass(1);
        assert!(
            (mass_ratio - rho_n).abs() < 1e-10,
            "N={n} d={d} λ={lam}: mass ratio {mass_ratio} vs ρᴺ {rho_n}"
        );

        // (2)/(3) vector relation: exact at d = N, tight otherwise.
        let p1 = sol.level_prob(1);
        let p2 = sol.level_prob(2);
        let tol = if d == n { 1e-12 } else { 2e-3 };
        for i in 0..p1.len() {
            if p1[i] > 1e-12 {
                let ratio = p2[i] / p1[i];
                assert!(
                    (ratio / rho_n - 1.0).abs() < tol,
                    "N={n} d={d} λ={lam}: entry ratio {ratio} vs ρᴺ {rho_n}"
                );
            }
        }

        // (3) delay agreement between the two solve paths.
        let fast = sqd.lower_bound(t).unwrap().delay;
        let full = sqd.lower_bound_full_r(t).unwrap().delay;
        assert!(
            ((fast - full) / full).abs() < 1e-6,
            "N={n} d={d} λ={lam}: scalar {fast} vs full {full}"
        );
    }
}

/// The d = 1 special case: SQ(1) is N independent M/M/1 queues, so the
/// exact delay is 1/(1−λ) and the bounds must bracket it.
#[test]
fn d1_brackets_mm1() {
    // Random routing leaves queues maximally unbalanced, so the upper
    // (blocking) model saturates early: at T = 4 it is stable only up to
    // moderate loads. The lower bound holds at any λ < 1.
    for lam in [0.4, 0.6] {
        let exact = 1.0 / (1.0 - lam);
        let sqd = Sqd::new(3, 1, lam).unwrap();
        let lb = sqd.lower_bound(4).unwrap().delay;
        let ub = sqd.upper_bound(4).unwrap().delay;
        assert!(
            lb <= exact + 1e-9 && exact <= ub + 1e-9,
            "λ={lam}: {lb} ≤ {exact} ≤ {ub} violated"
        );
    }
    let sqd = Sqd::new(3, 1, 0.8).unwrap();
    let lb = sqd.lower_bound(4).unwrap().delay;
    assert!(lb <= 5.0 + 1e-9, "LB {lb} above M/M/1 delay 5");
    // And the d = 1 upper model indeed loses stability at T = 4, λ = 0.8.
    assert!(matches!(
        sqd.upper_bound(4),
        Err(slb::CoreError::UpperBoundUnstable { .. })
    ));
}

/// The d = N special case (JSQ): cross-check the bound models against
/// brute force and the simulator simultaneously.
#[test]
fn jsq_case_consistent() {
    let (n, lam, t) = (3usize, 0.75f64, 3u32);
    let sqd = Sqd::new(n, n, lam).unwrap();
    let lb = sqd.lower_bound(t).unwrap().delay;
    let ub = sqd.upper_bound(t).unwrap().delay;
    let exact = BruteForce::solve(n, n, lam, 32).unwrap().mean_delay();
    let sim = SimConfig::new(n, lam)
        .unwrap()
        .policy(Policy::Jsq)
        .jobs(1_000_000)
        .warmup(100_000)
        .seed(0x15)
        .run()
        .unwrap();
    assert!(lb <= exact + 1e-6 && exact <= ub + 1e-6);
    assert!((sim.mean_delay - exact).abs() < 5.0 * sim.ci_halfwidth + 1e-3);
    // For JSQ the threshold truncation is extremely tight: arrivals never
    // increase imbalance, so both bounds almost coincide with the truth.
    assert!(
        (ub - lb) / exact < 0.05,
        "JSQ bounds should nearly touch: {lb} vs {ub}"
    );
}

/// Monotonicity in d of the true system (power of d choices), reproduced
/// by brute force, and reflected in the lower bounds.
#[test]
fn more_choices_less_delay() {
    let (n, lam) = (4usize, 0.7f64);
    let mut prev_exact = f64::INFINITY;
    for d in 1..=n {
        let exact = BruteForce::solve(n, d, lam, 30).unwrap().mean_delay();
        assert!(exact < prev_exact, "d={d}: {exact} !< {prev_exact}");
        prev_exact = exact;
    }
    let lb2 = Sqd::new(n, 2, lam).unwrap().lower_bound(3).unwrap().delay;
    let lb4 = Sqd::new(n, 4, lam).unwrap().lower_bound(3).unwrap().delay;
    assert!(lb4 < lb2);
}

/// Redirect soundness on every Fig. 10 configuration, at scale (full
/// boundary + first two repeating blocks).
#[test]
fn redirects_sound_across_evaluation_grid() {
    for (n, t) in [(3usize, 2u32), (3, 3), (6, 3)] {
        let space = BlockSpace::new(n, t).unwrap();
        let states: Vec<State> = space
            .boundary()
            .iter()
            .map(|(_, s)| s.clone())
            .chain(space.block0().iter().map(|(_, s)| s.clone()))
            .chain(space.block0().iter().map(|(_, s)| s.plus_one()))
            .collect();
        for d in [1usize, 2, n] {
            for variant in [
                ModelVariant::Lower { threshold: t },
                ModelVariant::Upper { threshold: t },
            ] {
                let violations = verify_redirects(states.iter(), d, 0.9, variant);
                assert!(
                    violations.is_empty(),
                    "N={n} T={t} d={d} {variant:?}: {violations:?}"
                );
            }
        }
    }
}

/// Cross-layer MAP validation: an MMPP/M/1 queue simulated with the
/// event-driven engine must match the exact matrix-geometric solution of
/// the same queue — the two paths share no code beyond `slb-linalg`.
#[test]
fn mmpp_m1_simulation_matches_qbd() {
    use slb::markov::Map;
    use slb::qbd::models;

    let map = Map::mmpp2(0.4, 0.6, 0.3, 1.2).unwrap();
    let mu = 1.0;
    let lam = map.rate().unwrap();
    assert!(lam < mu, "test premise: stable queue");

    let exact = models::map_m1_mean_sojourn(&map, mu).unwrap();

    // Simulate: N = 1, arrival MAP rescaled to λ·1 = λ (same rate).
    let sim = SimConfig::new(1, lam)
        .unwrap()
        .policy(Policy::Random)
        .arrival_map(map)
        .jobs(2_000_000)
        .warmup(200_000)
        .seed(0x3A9)
        .run()
        .unwrap();
    assert!(
        (sim.mean_delay - exact).abs() < 5.0 * sim.ci_halfwidth.max(0.01),
        "simulated {} ± {} vs exact {exact}",
        sim.mean_delay,
        sim.ci_halfwidth
    );
    // And the MMPP queue really is worse than M/M/1 at the same rate.
    assert!(exact > 1.0 / (1.0 - lam));
}

/// Level-independence (Lemma 1): the `(A2, A1, A0)` blocks extracted from
/// level 1 and from level 2 coincide, so the QBD representation is exact.
#[test]
fn qbd_regularity_between_deeper_levels() {
    use slb::core::BlockLocation;
    use slb::linalg::Matrix;

    let sqd = Sqd::new(3, 2, 0.8).unwrap();
    for kind in [BoundKind::Lower, BoundKind::Upper] {
        let model = BoundModel::new(sqd, kind, 2).unwrap();
        let space = model.space();
        let m = space.block_len();
        // For source level q ≥ 1, classify each transition target by its
        // level relative to the source and record the rate at the target's
        // within-block index.
        let block_matrices = |q_from: usize| -> (Matrix, Matrix, Matrix) {
            let mut down = Matrix::zeros(m, m);
            let mut stay = Matrix::zeros(m, m);
            let mut up = Matrix::zeros(m, m);
            for (i, _) in space.block0().iter() {
                let s = space.level_state(q_from, i);
                for tr in slb::core::transitions(&s, 2, 0.8, model.variant()) {
                    let (q_to, j) = match space.locate(&tr.target) {
                        Some(BlockLocation::Level { q, index }) => (q as i64, index),
                        other => panic!("target {} located at {other:?}", tr.target),
                    };
                    match q_to - q_from as i64 {
                        -1 => down[(i, j)] += tr.rate,
                        0 => stay[(i, j)] += tr.rate,
                        1 => up[(i, j)] += tr.rate,
                        other => panic!("level jump {other}"),
                    }
                }
            }
            (down, stay, up)
        };
        let (d1, s1, u1) = block_matrices(1);
        let (d2, s2, u2) = block_matrices(2);
        assert!(
            d1.approx_eq(&d2, 1e-9),
            "{kind:?}: A2 differs between levels"
        );
        assert!(
            s1.approx_eq(&s2, 1e-9),
            "{kind:?}: A1 differs between levels"
        );
        assert!(
            u1.approx_eq(&u2, 1e-9),
            "{kind:?}: A0 differs between levels"
        );
    }
}
