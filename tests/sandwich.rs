//! The paper's sandwich invariant, end to end and through both linear-
//! algebra paths.
//!
//! For every configuration the finite-regime bounds must bracket the
//! exact (truncated-chain) mean delay:
//!
//! ```text
//! lower_bound(T)  ≤  brute force  ≤  upper_bound(T)
//! ```
//!
//! The brute-force stationary vector is computed twice — once through the
//! dense GTH elimination and once through the shared CSR iterative kernel
//! (`slb_linalg::CsrMatrix` + `slb_markov::stationary_*_csr`) — and the
//! two must agree to solver tolerance. This pins the multi-layer sparse
//! refactor to the dense ground truth.

use slb::core::{transitions, ModelVariant, State};
use slb::linalg::{CooBuilder, CsrMatrix, Matrix};
use slb::markov::{gth_stationary, stationary_jacobi_csr, stationary_power_csr};
use slb::Sqd;

/// All sorted states on `n` servers with longest queue ≤ `cap`.
fn enumerate_capped(n: usize, cap: u32) -> Vec<State> {
    fn rec(cur: &mut Vec<u32>, pos: usize, max: u32, out: &mut Vec<State>) {
        if pos == cur.len() {
            out.push(State::new(cur.clone()).expect("sorted by construction"));
            return;
        }
        for v in (0..=max).rev() {
            cur[pos] = v;
            rec(cur, pos + 1, v, out);
        }
    }
    let mut out = Vec::new();
    rec(&mut vec![0u32; n], 0, cap, &mut out);
    out
}

/// The truncated SQ(d) generator as `(dense, csr)`, built from one pass
/// over the transition function.
fn truncated_generator(
    n: usize,
    d: usize,
    lambda: f64,
    cap: u32,
) -> (Matrix, CsrMatrix, Vec<State>) {
    let states = enumerate_capped(n, cap);
    let index: std::collections::HashMap<&State, usize> =
        states.iter().enumerate().map(|(i, s)| (s, i)).collect();
    let mut dense = Matrix::zeros(states.len(), states.len());
    let mut coo = CooBuilder::new(states.len(), states.len());
    for (i, s) in states.iter().enumerate() {
        for tr in transitions(s, d, lambda, ModelVariant::Base) {
            if tr.target.level(0) > cap {
                continue; // truncation: drop arrivals past the cap
            }
            let j = index[&tr.target];
            if j == i {
                continue;
            }
            dense[(i, j)] += tr.rate;
            dense[(i, i)] -= tr.rate;
            coo.add(i, j, tr.rate).unwrap();
            coo.add(i, i, -tr.rate).unwrap();
        }
    }
    (dense, coo.build(), states)
}

fn mean_delay(states: &[State], pi: &[f64], n: usize, lambda: f64) -> f64 {
    let jobs: f64 = states
        .iter()
        .zip(pi)
        .map(|(s, &p)| p * f64::from(s.total()))
        .sum();
    jobs / (lambda * n as f64)
}

#[test]
fn sandwich_holds_via_dense_and_csr_paths() {
    let (n, d, t, cap) = (3usize, 2usize, 3u32, 25u32);
    for lambda in [0.5, 0.8] {
        let sqd = Sqd::new(n, d, lambda).unwrap();
        let lower = sqd.lower_bound(t).unwrap().delay;
        let upper = sqd.upper_bound(t).unwrap().delay;

        let (dense, csr, states) = truncated_generator(n, d, lambda, cap);
        assert!(
            csr.to_dense().approx_eq(&dense, 1e-14),
            "assembly paths differ"
        );

        // Dense path: GTH elimination on the explicit generator.
        let pi_dense = gth_stationary(&dense).unwrap();
        // Sparse paths: the shared CSR kernel, both iterative solvers.
        let pi_jacobi = stationary_jacobi_csr(&csr, 1e-13, 2_000_000).unwrap();
        let pi_power = stationary_power_csr(&csr, 1e-13, 2_000_000).unwrap();
        for i in 0..pi_dense.len() {
            assert!(
                (pi_dense[i] - pi_jacobi[i]).abs() < 1e-8,
                "λ={lambda}: dense vs jacobi at {i}"
            );
            assert!(
                (pi_dense[i] - pi_power[i]).abs() < 1e-7,
                "λ={lambda}: dense vs power at {i}"
            );
        }

        for (path, pi) in [("dense", &pi_dense), ("csr", &pi_jacobi)] {
            let brute = mean_delay(&states, pi, n, lambda);
            assert!(
                lower <= brute + 1e-6,
                "λ={lambda} [{path}]: lower {lower} > brute {brute}"
            );
            assert!(
                brute <= upper + 1e-6,
                "λ={lambda} [{path}]: brute {brute} > upper {upper}"
            );
        }
    }
}

#[test]
fn sandwich_matches_library_brute_force() {
    // The hand-assembled chain above must agree with the library's own
    // CSR-backed brute-force solver.
    let (n, d, cap) = (3usize, 2usize, 25u32);
    for lambda in [0.5, 0.8] {
        let bf = slb::core::brute::BruteForce::solve(n, d, lambda, cap).unwrap();
        let (_, csr, states) = truncated_generator(n, d, lambda, cap);
        let pi = stationary_jacobi_csr(&csr, 1e-13, 2_000_000).unwrap();
        let here = mean_delay(&states, &pi, n, lambda);
        assert!(
            (bf.mean_delay() - here).abs() < 1e-9,
            "λ={lambda}: {} vs {here}",
            bf.mean_delay()
        );
    }
}
