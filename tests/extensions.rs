//! Cross-crate integration of the extension layers: delay distributions,
//! mean-field ODE, MAP-modulated bounds and the extended policy set must
//! be mutually consistent when accessed through the `slb` facade.

use slb::core::meanfield::MeanField;
use slb::markov::{Map, PhaseType};
use slb::{BoundKind, MapPh1, MapSqd, Policy, SimConfig, Sqd};

#[test]
fn percentile_bounds_bracket_simulation() {
    // The distributional bounds must bracket *simulated* percentiles
    // (independent of the brute-force oracle used inside slb-core).
    let (n, d, rho, t) = (3usize, 2usize, 0.8f64, 3u32);
    let sqd = Sqd::new(n, d, rho).unwrap();
    let lo = sqd.delay_distribution(BoundKind::Lower, t).unwrap();
    let hi = sqd.delay_distribution(BoundKind::Upper, t).unwrap();
    let sim = SimConfig::new(n, rho)
        .unwrap()
        .policy(Policy::SqD { d })
        .jobs(800_000)
        .warmup(80_000)
        .seed(99)
        .run()
        .unwrap();
    for &p in &[0.5, 0.9, 0.99] {
        let (ql, qh) = (lo.quantile(p).unwrap(), hi.quantile(p).unwrap());
        let qs = sim.delay_quantile(p).unwrap();
        // Generous slack: percentile estimates carry simulation noise and
        // 0.02-wide histogram bins.
        assert!(
            ql <= qs + 0.15 && qs <= qh + 0.15,
            "p={p}: {ql} ≤ {qs} ≤ {qh} violated"
        );
    }
}

#[test]
fn meanfield_fixed_point_matches_asymptotic_and_large_n_simulation() {
    let (d, rho) = (2usize, 0.8f64);
    let mut mf = MeanField::new(rho, d).unwrap();
    mf.run(300.0, 0.02);
    let ode = mf.mean_delay();
    let eq16 = slb::core::asymptotic::mean_delay(rho, d);
    assert!((ode - eq16).abs() < 1e-6, "{ode} vs {eq16}");

    // A large-N simulation approaches the fluid value from above.
    let sim = SimConfig::new(100, rho)
        .unwrap()
        .policy(Policy::SqD { d })
        .jobs(2_000_000)
        .warmup(200_000)
        .seed(5)
        .run()
        .unwrap();
    assert!(
        (sim.mean_delay - ode).abs() < 0.05,
        "N=100 sim {} vs fluid {ode}",
        sim.mean_delay
    );
    assert!(sim.mean_delay > ode - 0.01, "finite N lies above the fluid");
}

#[test]
fn map_bounds_agree_with_poisson_limit_of_mmpp() {
    // An MMPP with (nearly) equal phase rates degenerates to Poisson; the
    // modulated bounds must approach the scalar ones continuously.
    let (n, d, rho, t) = (3usize, 2usize, 0.7f64, 3u32);
    let nearly_poisson = Map::mmpp2(1.0, 1.0, 0.999, 1.001).unwrap();
    let modulated = MapSqd::with_utilization(n, d, &nearly_poisson, rho).unwrap();
    let scalar = Sqd::new(n, d, rho).unwrap();
    let m_lb = modulated.lower_bound(t).unwrap().delay;
    let s_lb = scalar.lower_bound(t).unwrap().delay;
    assert!((m_lb - s_lb).abs() < 1e-4, "{m_lb} vs {s_lb}");
}

#[test]
fn gi_m_1_three_ways() {
    // Erlang-2/M/1 solved as (a) Theorem-2 σ root, (b) MAP/PH/1 QBD,
    // (c) discrete-event simulation — all three must agree.
    let (rho, mu) = (0.7f64, 1.0f64);
    let inter = slb::core::sigma::Interarrival::Erlang {
        k: 2,
        rate: 2.0 * rho,
    };
    let sigma = slb::core::sigma::solve_sigma(&inter, mu).unwrap();
    let via_sigma = 1.0 / (mu * (1.0 - sigma));

    let ph = PhaseType::erlang(2, 2.0 * rho).unwrap();
    let queue = MapPh1::new(
        Map::renewal(&ph).unwrap(),
        PhaseType::exponential(mu).unwrap(),
    )
    .unwrap();
    let via_qbd = queue.mean_sojourn().unwrap();
    assert!(
        (via_sigma - via_qbd).abs() < 1e-8,
        "{via_sigma} vs {via_qbd}"
    );

    let sim = SimConfig::new(1, rho)
        .unwrap()
        .policy(Policy::Random)
        .arrival(slb::sim::ArrivalProcess::Erlang { k: 2 })
        .jobs(600_000)
        .warmup(60_000)
        .seed(13)
        .run()
        .unwrap();
    assert!(
        (sim.mean_delay - via_qbd).abs() < 4.0 * sim.ci_halfwidth.max(0.03),
        "sim {} vs analytic {via_qbd}",
        sim.mean_delay
    );
}

#[test]
fn policy_hierarchy_full_spectrum() {
    // Mean delays must respect the known ordering at moderate-high load:
    // random ≥ SQ(2) ≥ SQ(2)+memory ≥ SQ(3) region ≥ JSQ.
    let (n, rho, jobs) = (8usize, 0.85f64, 400_000u64);
    let run = |p: Policy| {
        SimConfig::new(n, rho)
            .unwrap()
            .policy(p)
            .jobs(jobs)
            .warmup(jobs / 10)
            .seed(7)
            .run()
            .unwrap()
            .mean_delay
    };
    let random = run(Policy::Random);
    let sq2 = run(Policy::SqD { d: 2 });
    let sq2m = run(Policy::SqDMemory { d: 2 });
    let jsq = run(Policy::Jsq);
    assert!(
        random > sq2 && sq2 > sq2m && sq2m > jsq,
        "{random} > {sq2} > {sq2m} > {jsq} violated"
    );
}
